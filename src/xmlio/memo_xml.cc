#include "xmlio/memo_xml.h"

#include <map>

#include "common/string_util.h"
#include "xml/xml.h"

namespace pdw {

namespace {

using xml::Element;

// ---------------------------------------------------------------------------
// Scalar expression (de)serialization.
// ---------------------------------------------------------------------------

const char* BinaryOpName(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kAdd: return "add";
    case sql::BinaryOp::kSub: return "sub";
    case sql::BinaryOp::kMul: return "mul";
    case sql::BinaryOp::kDiv: return "div";
    case sql::BinaryOp::kMod: return "mod";
    case sql::BinaryOp::kEq: return "eq";
    case sql::BinaryOp::kNe: return "ne";
    case sql::BinaryOp::kLt: return "lt";
    case sql::BinaryOp::kLe: return "le";
    case sql::BinaryOp::kGt: return "gt";
    case sql::BinaryOp::kGe: return "ge";
    case sql::BinaryOp::kAnd: return "and";
    case sql::BinaryOp::kOr: return "or";
    case sql::BinaryOp::kLike: return "like";
    case sql::BinaryOp::kNotLike: return "notlike";
  }
  return "?";
}

Result<sql::BinaryOp> BinaryOpFromName(const std::string& name) {
  static const std::map<std::string, sql::BinaryOp> kMap = {
      {"add", sql::BinaryOp::kAdd}, {"sub", sql::BinaryOp::kSub},
      {"mul", sql::BinaryOp::kMul}, {"div", sql::BinaryOp::kDiv},
      {"mod", sql::BinaryOp::kMod}, {"eq", sql::BinaryOp::kEq},
      {"ne", sql::BinaryOp::kNe},   {"lt", sql::BinaryOp::kLt},
      {"le", sql::BinaryOp::kLe},   {"gt", sql::BinaryOp::kGt},
      {"ge", sql::BinaryOp::kGe},   {"and", sql::BinaryOp::kAnd},
      {"or", sql::BinaryOp::kOr},   {"like", sql::BinaryOp::kLike},
      {"notlike", sql::BinaryOp::kNotLike},
  };
  auto it = kMap.find(name);
  if (it == kMap.end()) {
    return Status::InvalidArgument("unknown binary op '" + name + "'");
  }
  return it->second;
}

void SerializeDatum(const Datum& d, Element* e) {
  e->SetAttr("t", std::string(TypeIdToString(d.type())));
  if (d.is_null()) {
    e->SetAttr("null", std::string("1"));
    return;
  }
  switch (d.type()) {
    case TypeId::kBool:
      e->SetAttr("v", std::string(d.bool_value() ? "1" : "0"));
      break;
    case TypeId::kInt:
      e->SetAttr("v", static_cast<int64_t>(d.int_value()));
      break;
    case TypeId::kDate:
      e->SetAttr("v", static_cast<int64_t>(d.date_value()));
      break;
    case TypeId::kDouble:
      e->SetAttr("v", d.double_value());
      break;
    case TypeId::kVarchar:
      e->SetAttr("v", d.string_value());
      break;
    default:
      break;
  }
}

Result<Datum> ParseDatum(const Element& e) {
  if (e.GetAttr("null") == "1") return Datum::Null();
  TypeId t = TypeIdFromString(e.GetAttr("t"));
  switch (t) {
    case TypeId::kBool: return Datum::Bool(e.GetAttr("v") == "1");
    case TypeId::kInt: return Datum::Int(e.GetAttrInt("v"));
    case TypeId::kDate: return Datum::Date(static_cast<int32_t>(e.GetAttrInt("v")));
    case TypeId::kDouble: return Datum::Double(e.GetAttrDouble("v"));
    case TypeId::kVarchar: return Datum::Varchar(e.GetAttr("v"));
    default: return Datum::Null();
  }
}

void SerializeExpr(const ScalarExpr& expr, Element* parent) {
  Element* e = parent->AddChild("E");
  switch (expr.kind()) {
    case ScalarKind::kColumn: {
      const auto& c = static_cast<const ColumnExpr&>(expr);
      e->SetAttr("k", std::string("col"));
      e->SetAttr("id", static_cast<int64_t>(c.id()));
      e->SetAttr("name", c.name());
      e->SetAttr("t", std::string(TypeIdToString(c.type())));
      break;
    }
    case ScalarKind::kLiteral: {
      e->SetAttr("k", std::string("lit"));
      SerializeDatum(static_cast<const LiteralExprB&>(expr).value(), e);
      break;
    }
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(expr);
      e->SetAttr("k", std::string("bin"));
      e->SetAttr("op", std::string(BinaryOpName(b.op())));
      e->SetAttr("t", std::string(TypeIdToString(b.type())));
      SerializeExpr(*b.left(), e);
      SerializeExpr(*b.right(), e);
      break;
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(expr);
      e->SetAttr("k", std::string("un"));
      e->SetAttr("op", std::string(u.op() == sql::UnaryOp::kNot ? "not" : "neg"));
      e->SetAttr("t", std::string(TypeIdToString(u.type())));
      SerializeExpr(*u.operand(), e);
      break;
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(expr);
      e->SetAttr("k", std::string("isnull"));
      e->SetAttr("neg", std::string(n.negated() ? "1" : "0"));
      SerializeExpr(*n.operand(), e);
      break;
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(expr);
      e->SetAttr("k", std::string("case"));
      e->SetAttr("t", std::string(TypeIdToString(c.type())));
      e->SetAttr("whens", static_cast<int64_t>(c.whens().size()));
      for (const auto& [w, t] : c.whens()) {
        SerializeExpr(*w, e);
        SerializeExpr(*t, e);
      }
      if (c.else_expr()) SerializeExpr(*c.else_expr(), e);
      break;
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(expr);
      e->SetAttr("k", std::string("cast"));
      e->SetAttr("t", std::string(TypeIdToString(c.type())));
      SerializeExpr(*c.operand(), e);
      break;
    }
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(expr);
      e->SetAttr("k", std::string("fn"));
      e->SetAttr("name", f.name());
      e->SetAttr("t", std::string(TypeIdToString(f.type())));
      for (const auto& a : f.args()) SerializeExpr(*a, e);
      break;
    }
  }
}

Result<ScalarExprPtr> ParseExpr(const Element& e) {
  const std::string& k = e.GetAttr("k");
  if (k == "col") {
    return ScalarExprPtr(std::make_shared<ColumnExpr>(
        static_cast<ColumnId>(e.GetAttrInt("id")), e.GetAttr("name"),
        TypeIdFromString(e.GetAttr("t"))));
  }
  if (k == "lit") {
    PDW_ASSIGN_OR_RETURN(Datum d, ParseDatum(e));
    return MakeLiteral(std::move(d));
  }
  std::vector<ScalarExprPtr> kids;
  for (const auto& c : e.children()) {
    PDW_ASSIGN_OR_RETURN(ScalarExprPtr kid, ParseExpr(*c));
    kids.push_back(std::move(kid));
  }
  TypeId t = TypeIdFromString(e.GetAttr("t"));
  if (k == "bin") {
    if (kids.size() != 2) return Status::InvalidArgument("bin expects 2 kids");
    PDW_ASSIGN_OR_RETURN(sql::BinaryOp op, BinaryOpFromName(e.GetAttr("op")));
    return ScalarExprPtr(
        std::make_shared<BinaryExprB>(op, kids[0], kids[1], t));
  }
  if (k == "un") {
    if (kids.size() != 1) return Status::InvalidArgument("un expects 1 kid");
    sql::UnaryOp op = e.GetAttr("op") == "not" ? sql::UnaryOp::kNot
                                               : sql::UnaryOp::kNegate;
    return ScalarExprPtr(std::make_shared<UnaryExprB>(op, kids[0], t));
  }
  if (k == "isnull") {
    if (kids.size() != 1) return Status::InvalidArgument("isnull expects 1 kid");
    return ScalarExprPtr(
        std::make_shared<IsNullExprB>(kids[0], e.GetAttr("neg") == "1"));
  }
  if (k == "case") {
    size_t whens = static_cast<size_t>(e.GetAttrInt("whens"));
    if (kids.size() < whens * 2) {
      return Status::InvalidArgument("case kid count mismatch");
    }
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> pairs;
    for (size_t i = 0; i < whens; ++i) {
      pairs.emplace_back(kids[2 * i], kids[2 * i + 1]);
    }
    ScalarExprPtr else_expr;
    if (kids.size() > whens * 2) else_expr = kids.back();
    return ScalarExprPtr(
        std::make_shared<CaseExprB>(std::move(pairs), else_expr, t));
  }
  if (k == "cast") {
    if (kids.size() != 1) return Status::InvalidArgument("cast expects 1 kid");
    return ScalarExprPtr(std::make_shared<CastExprB>(kids[0], t));
  }
  if (k == "fn") {
    return ScalarExprPtr(
        std::make_shared<FunctionExprB>(e.GetAttr("name"), std::move(kids), t));
  }
  return Status::InvalidArgument("unknown expr kind '" + k + "'");
}

// ---------------------------------------------------------------------------
// Column binding helpers.
// ---------------------------------------------------------------------------

void SerializeBinding(const ColumnBinding& b, const StatsContext& stats,
                      Element* parent) {
  Element* e = parent->AddChild("Col");
  e->SetAttr("id", static_cast<int64_t>(b.id));
  e->SetAttr("name", b.name);
  e->SetAttr("t", std::string(TypeIdToString(b.type)));
  e->SetAttr("ndv", stats.Ndv(b.id, -1));
  e->SetAttr("w", stats.Width(b.id));
}

ColumnBinding ParseBinding(const Element& e) {
  return ColumnBinding{static_cast<ColumnId>(e.GetAttrInt("id")),
                       e.GetAttr("name"), TypeIdFromString(e.GetAttr("t"))};
}

// ---------------------------------------------------------------------------
// Operator payload (de)serialization.
// ---------------------------------------------------------------------------

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar: return "countstar";
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

Result<AggFunc> AggFuncFromName(const std::string& s) {
  if (s == "countstar") return AggFunc::kCountStar;
  if (s == "count") return AggFunc::kCount;
  if (s == "sum") return AggFunc::kSum;
  if (s == "avg") return AggFunc::kAvg;
  if (s == "min") return AggFunc::kMin;
  if (s == "max") return AggFunc::kMax;
  return Status::InvalidArgument("unknown aggregate '" + s + "'");
}

void SerializePayload(const LogicalOp& op, const StatsContext& stats,
                      Element* e) {
  switch (op.kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(op);
      e->SetAttr("op", std::string("Get"));
      e->SetAttr("table", get.table_name());
      e->SetAttr("alias", get.alias());
      for (const auto& b : get.bindings()) SerializeBinding(b, stats, e);
      break;
    }
    case LogicalOpKind::kEmpty: {
      e->SetAttr("op", std::string("Empty"));
      for (const auto& b : op.ComputeOutput({})) SerializeBinding(b, stats, e);
      break;
    }
    case LogicalOpKind::kFilter: {
      const auto& f = static_cast<const LogicalFilter&>(op);
      e->SetAttr("op", std::string("Filter"));
      for (const auto& c : f.conjuncts()) {
        SerializeExpr(*c, e->AddChild("Conj"));
      }
      break;
    }
    case LogicalOpKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(op);
      e->SetAttr("op", std::string("Project"));
      for (const auto& item : p.items()) {
        Element* ie = e->AddChild("Item");
        ie->SetAttr("id", static_cast<int64_t>(item.output.id));
        ie->SetAttr("name", item.output.name);
        ie->SetAttr("t", std::string(TypeIdToString(item.output.type)));
        SerializeExpr(*item.expr, ie);
      }
      break;
    }
    case LogicalOpKind::kJoin: {
      const auto& j = static_cast<const LogicalJoin&>(op);
      e->SetAttr("op", std::string("Join"));
      e->SetAttr("jt", std::string(LogicalJoinTypeToString(j.join_type())));
      for (const auto& c : j.conditions()) {
        SerializeExpr(*c, e->AddChild("Cond"));
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      const auto& a = static_cast<const LogicalAggregate&>(op);
      e->SetAttr("op", std::string("Agg"));
      std::vector<std::string> groups;
      for (ColumnId id : a.group_by()) groups.push_back(std::to_string(id));
      e->SetAttr("groups", Join(groups, " "));
      for (const auto& item : a.aggregates()) {
        Element* ie = e->AddChild("AggItem");
        ie->SetAttr("f", std::string(AggFuncName(item.func)));
        ie->SetAttr("distinct", std::string(item.distinct ? "1" : "0"));
        ie->SetAttr("id", static_cast<int64_t>(item.output.id));
        ie->SetAttr("name", item.output.name);
        ie->SetAttr("t", std::string(TypeIdToString(item.output.type)));
        if (item.arg) SerializeExpr(*item.arg, ie);
      }
      break;
    }
    case LogicalOpKind::kSort: {
      const auto& s = static_cast<const LogicalSort&>(op);
      e->SetAttr("op", std::string("Sort"));
      for (const auto& item : s.items()) {
        Element* ie = e->AddChild("Key");
        ie->SetAttr("col", static_cast<int64_t>(item.column));
        ie->SetAttr("asc", std::string(item.ascending ? "1" : "0"));
      }
      break;
    }
    case LogicalOpKind::kLimit: {
      e->SetAttr("op", std::string("Limit"));
      e->SetAttr("n", static_cast<const LogicalLimit&>(op).limit());
      break;
    }
    case LogicalOpKind::kUnionAll: {
      const auto& u = static_cast<const LogicalUnionAll&>(op);
      e->SetAttr("op", std::string("Union"));
      for (const auto& b : u.outputs()) SerializeBinding(b, stats, e);
      for (const auto& cols : u.child_columns()) {
        std::vector<std::string> parts;
        for (ColumnId id : cols) parts.push_back(std::to_string(id));
        e->AddChild("Map")->SetAttr("cols", Join(parts, " "));
      }
      break;
    }
  }
}

Result<LogicalOpPtr> ParsePayload(const Element& e, const Catalog& catalog) {
  const std::string& op = e.GetAttr("op");
  if (op == "Get") {
    std::vector<ColumnBinding> bindings;
    for (const Element* c : e.FindChildren("Col")) {
      bindings.push_back(ParseBinding(*c));
    }
    PDW_ASSIGN_OR_RETURN(const TableDef* table,
                         catalog.GetTable(e.GetAttr("table")));
    return LogicalOpPtr(std::make_shared<LogicalGet>(
        e.GetAttr("table"), e.GetAttr("alias"), table, std::move(bindings)));
  }
  if (op == "Empty") {
    std::vector<ColumnBinding> bindings;
    for (const Element* c : e.FindChildren("Col")) {
      bindings.push_back(ParseBinding(*c));
    }
    return LogicalOpPtr(std::make_shared<LogicalEmpty>(std::move(bindings)));
  }
  if (op == "Filter") {
    std::vector<ScalarExprPtr> conjuncts;
    for (const Element* c : e.FindChildren("Conj")) {
      if (c->children().empty()) {
        return Status::InvalidArgument("empty Conj");
      }
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr x, ParseExpr(*c->children()[0]));
      conjuncts.push_back(std::move(x));
    }
    return LogicalOpPtr(
        std::make_shared<LogicalFilter>(std::move(conjuncts), nullptr));
  }
  if (op == "Project") {
    std::vector<ProjectItem> items;
    for (const Element* c : e.FindChildren("Item")) {
      if (c->children().empty()) return Status::InvalidArgument("empty Item");
      ProjectItem item;
      item.output = ColumnBinding{static_cast<ColumnId>(c->GetAttrInt("id")),
                                  c->GetAttr("name"),
                                  TypeIdFromString(c->GetAttr("t"))};
      PDW_ASSIGN_OR_RETURN(item.expr, ParseExpr(*c->children()[0]));
      items.push_back(std::move(item));
    }
    return LogicalOpPtr(
        std::make_shared<LogicalProject>(std::move(items), nullptr));
  }
  if (op == "Join") {
    std::vector<ScalarExprPtr> conds;
    for (const Element* c : e.FindChildren("Cond")) {
      if (c->children().empty()) return Status::InvalidArgument("empty Cond");
      PDW_ASSIGN_OR_RETURN(ScalarExprPtr x, ParseExpr(*c->children()[0]));
      conds.push_back(std::move(x));
    }
    const std::string& jt = e.GetAttr("jt");
    LogicalJoinType type;
    if (jt == "Inner") type = LogicalJoinType::kInner;
    else if (jt == "LeftOuter") type = LogicalJoinType::kLeftOuter;
    else if (jt == "Semi") type = LogicalJoinType::kSemi;
    else if (jt == "Anti") type = LogicalJoinType::kAnti;
    else if (jt == "Cross") type = LogicalJoinType::kCross;
    else return Status::InvalidArgument("unknown join type '" + jt + "'");
    return LogicalOpPtr(std::make_shared<LogicalJoin>(type, std::move(conds),
                                                      nullptr, nullptr));
  }
  if (op == "Agg") {
    std::vector<ColumnId> group_by;
    for (const std::string& part : Split(e.GetAttr("groups"), ' ')) {
      if (!part.empty()) {
        group_by.push_back(static_cast<ColumnId>(std::stol(part)));
      }
    }
    std::vector<AggregateItem> aggs;
    for (const Element* c : e.FindChildren("AggItem")) {
      AggregateItem item;
      PDW_ASSIGN_OR_RETURN(item.func, AggFuncFromName(c->GetAttr("f")));
      item.distinct = c->GetAttr("distinct") == "1";
      item.output = ColumnBinding{static_cast<ColumnId>(c->GetAttrInt("id")),
                                  c->GetAttr("name"),
                                  TypeIdFromString(c->GetAttr("t"))};
      if (!c->children().empty()) {
        PDW_ASSIGN_OR_RETURN(item.arg, ParseExpr(*c->children()[0]));
      }
      aggs.push_back(std::move(item));
    }
    return LogicalOpPtr(std::make_shared<LogicalAggregate>(
        std::move(group_by), std::move(aggs), nullptr));
  }
  if (op == "Sort") {
    std::vector<SortItem> items;
    for (const Element* c : e.FindChildren("Key")) {
      items.push_back(SortItem{static_cast<ColumnId>(c->GetAttrInt("col")),
                               c->GetAttr("asc") == "1"});
    }
    return LogicalOpPtr(std::make_shared<LogicalSort>(std::move(items), nullptr));
  }
  if (op == "Limit") {
    return LogicalOpPtr(std::make_shared<LogicalLimit>(e.GetAttrInt("n"), nullptr));
  }
  if (op == "Union") {
    std::vector<ColumnBinding> outputs;
    for (const Element* c : e.FindChildren("Col")) {
      outputs.push_back(ParseBinding(*c));
    }
    std::vector<std::vector<ColumnId>> child_cols;
    for (const Element* c : e.FindChildren("Map")) {
      std::vector<ColumnId> ids;
      for (const std::string& part : Split(c->GetAttr("cols"), ' ')) {
        if (!part.empty()) ids.push_back(static_cast<ColumnId>(std::stol(part)));
      }
      child_cols.push_back(std::move(ids));
    }
    return LogicalOpPtr(std::make_shared<LogicalUnionAll>(
        std::move(outputs), std::move(child_cols),
        std::vector<LogicalOpPtr>{}));
  }
  return Status::InvalidArgument("unknown operator '" + op + "'");
}

}  // namespace

std::string MemoToXml(const Memo& memo, const StatsContext& stats) {
  Element root("Memo");
  root.SetAttr("root", static_cast<int64_t>(memo.root()));
  root.SetAttr("groups", static_cast<int64_t>(memo.num_groups()));
  root.SetAttr("budget_exhausted",
               std::string(memo.budget_exhausted() ? "1" : "0"));
  for (int gi = 0; gi < memo.num_groups(); ++gi) {
    const Group& g = memo.group(gi);
    Element* ge = root.AddChild("Group");
    ge->SetAttr("id", static_cast<int64_t>(g.id));
    ge->SetAttr("card", g.cardinality);
    ge->SetAttr("width", g.row_width);
    Element* cols = ge->AddChild("Output");
    for (const auto& b : g.output) SerializeBinding(b, stats, cols);
    for (const auto& expr : g.exprs) {
      Element* ee = ge->AddChild("Expr");
      std::vector<std::string> ch;
      for (GroupId c : expr.children) ch.push_back(std::to_string(c));
      ee->SetAttr("ch", Join(ch, " "));
      SerializePayload(*expr.op, stats, ee);
    }
  }
  return root.Serialize();
}

Result<ImportedMemo> MemoFromXml(const std::string& xml_text,
                                 const Catalog& shell_catalog,
                                 const MemoOptions& options) {
  PDW_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  if (doc->name() != "Memo") {
    return Status::InvalidArgument("expected <Memo> root element");
  }

  ImportedMemo out;
  out.stats = std::make_shared<StatsContext>();
  out.estimator = std::make_shared<CardinalityEstimator>(out.stats.get());
  out.memo = std::make_shared<Memo>(out.estimator.get(), options);

  std::vector<const Element*> group_elems = doc->FindChildren("Group");
  // Pass 1: create all groups with their logical properties, and register
  // per-column statistics.
  for (const Element* ge : group_elems) {
    std::vector<ColumnBinding> output;
    const Element* cols = ge->FindChild("Output");
    if (cols != nullptr) {
      for (const Element* c : cols->FindChildren("Col")) {
        ColumnBinding b = ParseBinding(*c);
        double ndv = c->GetAttrDouble("ndv", -1);
        double width = c->GetAttrDouble("w", DefaultTypeWidth(b.type));
        if (ndv >= 0) {
          out.stats->RegisterSynthesized(b.id, b.type, ndv, width);
        } else {
          out.stats->RegisterSynthesized(b.id, b.type,
                                         ge->GetAttrDouble("card", 1000), width);
        }
        output.push_back(std::move(b));
      }
    }
    GroupId gid = out.memo->NewGroup(std::move(output),
                                     ge->GetAttrDouble("card"),
                                     ge->GetAttrDouble("width"));
    if (gid != static_cast<GroupId>(ge->GetAttrInt("id"))) {
      return Status::InvalidArgument("non-contiguous group ids in memo XML");
    }
  }
  // Pass 2: attach expressions (they may reference any group).
  for (const Element* ge : group_elems) {
    GroupId gid = static_cast<GroupId>(ge->GetAttrInt("id"));
    for (const Element* ee : ge->FindChildren("Expr")) {
      std::vector<GroupId> children;
      for (const std::string& part : Split(ee->GetAttr("ch"), ' ')) {
        if (!part.empty()) {
          children.push_back(static_cast<GroupId>(std::stol(part)));
        }
      }
      for (GroupId c : children) {
        if (c < 0 || c >= out.memo->num_groups()) {
          return Status::InvalidArgument("expression references bad group");
        }
      }
      PDW_ASSIGN_OR_RETURN(LogicalOpPtr payload,
                           ParsePayload(*ee, shell_catalog));
      out.memo->AddExpr(std::move(payload), std::move(children), gid);
    }
  }
  // Restore the root group marker.
  GroupId root = static_cast<GroupId>(doc->GetAttrInt("root"));
  if (root < 0 || root >= out.memo->num_groups()) {
    return Status::InvalidArgument("bad memo root id");
  }
  out.memo->SetRoot(root);
  return out;
}

}  // namespace pdw
