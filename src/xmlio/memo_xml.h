#ifndef PDW_XMLIO_MEMO_XML_H_
#define PDW_XMLIO_MEMO_XML_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "optimizer/memo.h"

namespace pdw {

/// The PDW-side reconstruction of an exported search space: the memo plus
/// the statistics context rebuilt from the serialized per-column NDV/width
/// attributes (the "PDW memo parser", Fig. 2 component 4).
struct ImportedMemo {
  std::shared_ptr<StatsContext> stats;
  std::shared_ptr<CardinalityEstimator> estimator;
  std::shared_ptr<Memo> memo;
};

/// Serializes a populated memo (groups, logical properties, expressions,
/// root) to XML — the paper's "XML generator" (Fig. 2 component 3). The
/// per-column NDV and width estimates travel with each group so the PDW
/// side can cost aggregate splits and data movement without re-touching
/// the shell database.
std::string MemoToXml(const Memo& memo, const StatsContext& stats);

/// Parses a memo XML document. Base-table references are re-resolved
/// against `shell_catalog` (which must contain the same tables the serial
/// compilation saw).
Result<ImportedMemo> MemoFromXml(const std::string& xml_text,
                                 const Catalog& shell_catalog,
                                 const MemoOptions& options = {});

}  // namespace pdw

#endif  // PDW_XMLIO_MEMO_XML_H_
