#include "pdw/pdw_optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "optimizer/serial_optimizer.h"

namespace pdw {

namespace {

constexpr double kInfiniteCost = 1e300;

/// Maps a partial-aggregate item to the matching global aggregate over the
/// partial column (SUM->SUM, COUNT->SUM of partial counts, MIN/MAX
/// idempotent). The binder splits AVG into SUM/COUNT before optimization;
/// an AVG reaching a split plan would silently re-aggregate partial
/// averages as a SUM, so it is a hard compile error instead.
Result<AggregateItem> GlobalPhaseItem(const AggregateItem& item) {
  AggregateItem global;
  global.output = item.output;
  global.distinct = false;
  global.arg = MakeColumn(item.output);
  switch (item.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
    case AggFunc::kSum:
      global.func = AggFunc::kSum;
      break;
    case AggFunc::kMin:
      global.func = AggFunc::kMin;
      break;
    case AggFunc::kMax:
      global.func = AggFunc::kMax;
      break;
    case AggFunc::kAvg:
      return Status::Internal(
          "AVG survived binding into a split (local/global) aggregation "
          "plan; partial averages cannot be re-aggregated");
  }
  return global;
}

bool HasDistinctAggregate(const LogicalAggregate& agg) {
  for (const auto& item : agg.aggregates()) {
    if (item.distinct) return true;
  }
  return false;
}

/// Walks the built plan for the pushed-down shape: a join with a local
/// partial aggregate feeding one input (possibly through a Move/Sort).
bool PlanUsesPreagg(const PlanNode& node) {
  if (node.kind == PhysOpKind::kHashJoin ||
      node.kind == PhysOpKind::kNestedLoopJoin) {
    for (const auto& c : node.children) {
      const PlanNode* n = c.get();
      while (n->kind == PhysOpKind::kMove || n->kind == PhysOpKind::kSort) {
        n = n->children[0].get();
      }
      if (n->kind == PhysOpKind::kHashAggregate &&
          n->agg_phase == AggPhase::kLocal) {
        return true;
      }
    }
  }
  for (const auto& c : node.children) {
    if (PlanUsesPreagg(*c)) return true;
  }
  return false;
}

}  // namespace

bool ResolvePreaggEnabled(int enable_preagg) {
  if (enable_preagg >= 0) return enable_preagg != 0;
  const char* env = std::getenv("PDW_OPT_PREAGG");
  if (env == nullptr || *env == '\0') return true;
  std::string v = env;
  return !(v == "0" || EqualsIgnoreCase(v, "off") ||
           EqualsIgnoreCase(v, "false"));
}

PdwOptimizer::PdwOptimizer(Memo* memo, const Topology& topology,
                           PdwOptimizerOptions options)
    : memo_(memo),
      topology_(topology),
      opts_(options),
      cost_model_(options.cost_params, topology.num_compute_nodes),
      props_(DeriveInterestingProperties(*memo)) {}

ColumnId PdwOptimizer::MemberInOutput(GroupId gid, ColumnId rep) const {
  for (const auto& b : memo_->group(gid).output) {
    if (props_.equivalence.Find(b.id) == rep) return b.id;
  }
  return kInvalidColumnId;
}

bool PdwOptimizer::Consider(GroupId gid, PdwOption option) {
  considered_.fetch_add(1, std::memory_order_relaxed);
  bool is_enforcer = option.is_enforcer;
  bool is_preagg = option.preagg != nullptr;
  if (is_preagg) preagg_considered_.fetch_add(1, std::memory_order_relaxed);
  option.prop = option.prop.Canonical(props_.equivalence);
  std::vector<PdwOption>& opts = options_[gid];
  if (opts_.prune) {
    for (size_t i = 0; i < opts.size(); ++i) {
      if (opts[i].prop == option.prop) {
        if (option.cost < opts[i].cost) {
          opts[i] = std::move(option);
          if (is_enforcer) enforcers_kept_.fetch_add(1, std::memory_order_relaxed);
          if (is_preagg) preagg_kept_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        return false;
      }
    }
    opts.push_back(std::move(option));
    if (is_enforcer) enforcers_kept_.fetch_add(1, std::memory_order_relaxed);
    if (is_preagg) preagg_kept_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // No pruning (FIG4 ablation): keep every structurally distinct option up
  // to the safety cap.
  if (opts.size() >= opts_.max_options_per_group) return false;
  opts.push_back(std::move(option));
  if (is_enforcer) enforcers_kept_.fetch_add(1, std::memory_order_relaxed);
  if (is_preagg) preagg_kept_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double PdwOptimizer::RelationalCost(const Group& g, const GroupExpr& e,
                                    bool distributed) const {
  if (!opts_.relational_costs) return 0;
  double bytes = g.cardinality * std::max(1.0, g.row_width);
  for (GroupId c : e.children) {
    const Group& cg = memo_->group(c);
    bytes += cg.cardinality * std::max(1.0, cg.row_width);
  }
  double per_node = distributed
                        ? bytes / cost_model_.num_nodes()
                        : bytes;
  return per_node * opts_.relational_lambda;
}

void PdwOptimizer::OptimizeGroup(GroupId gid) {
  if (done_.count(gid) > 0) return;
  if (!in_progress_.insert(gid).second) return;  // cycle guard

  const Group& g = memo_->group(gid);
  for (const auto& e : g.exprs) {
    for (GroupId c : e.children) OptimizeGroup(c);
  }
  for (size_t i = 0; i < g.exprs.size(); ++i) {
    EnumerateExpr(gid, static_cast<int>(i));
  }
  EnforcerStep(gid);
  in_progress_.erase(gid);
  done_.insert(gid);
}

void PdwOptimizer::EnumerateExpr(GroupId gid, int expr_index) {
  const Group& g = memo_->group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(expr_index)];

  switch (e.op->kind()) {
    case LogicalOpKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(*e.op);
      PdwOption o;
      o.expr_index = expr_index;
      const TableDef* t = get.table();
      if (t == nullptr || t->distribution.is_replicated()) {
        o.prop = DistributionProperty::Replicated();
      } else {
        std::vector<ColumnId> cols;
        for (const std::string& dc : t->distribution.columns) {
          for (const auto& b : get.bindings()) {
            if (EqualsIgnoreCase(b.name, dc)) cols.push_back(b.id);
          }
        }
        o.prop = DistributionProperty::Distributed(std::move(cols));
      }
      o.cost = RelationalCost(g, e, !o.prop.is_replicated());
      Consider(gid, std::move(o));
      return;
    }
    case LogicalOpKind::kEmpty: {
      for (DistributionProperty prop :
           {DistributionProperty::Replicated(),
            DistributionProperty::AnyDistributed(),
            DistributionProperty::Control()}) {
        PdwOption o;
        o.expr_index = expr_index;
        o.prop = prop;
        Consider(gid, std::move(o));
      }
      return;
    }
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kProject: {
      GroupId child = e.children[0];
      const auto& child_opts = options_.at(child);
      for (size_t ci = 0; ci < child_opts.size(); ++ci) {
        PdwOption o;
        o.expr_index = expr_index;
        o.child_options = {static_cast<int>(ci)};
        o.prop = child_opts[ci].prop;
        if (e.op->kind() == LogicalOpKind::kProject &&
            o.prop.kind == DistributionKind::kDistributed) {
          // Hash columns must survive the projection (by class).
          for (ColumnId rep : o.prop.columns) {
            if (MemberInOutput(gid, rep) == kInvalidColumnId) {
              o.prop = DistributionProperty::AnyDistributed();
              break;
            }
          }
        }
        o.cost = child_opts[ci].cost +
                 RelationalCost(g, e, !o.prop.is_replicated() &&
                                          !o.prop.is_control());
        Consider(gid, std::move(o));
      }
      return;
    }
    case LogicalOpKind::kJoin:
      EnumerateJoin(gid, expr_index);
      return;
    case LogicalOpKind::kAggregate:
      EnumerateAggregate(gid, expr_index);
      return;
    case LogicalOpKind::kLimit:
      EnumerateLimit(gid, expr_index);
      return;
    case LogicalOpKind::kUnionAll:
      EnumerateUnionAll(gid, expr_index);
      return;
  }
}

void PdwOptimizer::EnumerateJoin(GroupId gid, int expr_index) {
  const Group& g = memo_->group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(expr_index)];
  const auto& j = static_cast<const LogicalJoin&>(*e.op);
  GroupId lg = e.children[0];
  GroupId rg = e.children[1];

  // Equivalence-class representatives of this join's own equi predicates —
  // only these make two distributed sides genuinely collocated.
  std::set<ColumnId> pair_reps;
  for (const auto& [a, b] :
       j.EquiKeys(memo_->group(lg).output, memo_->group(rg).output)) {
    pair_reps.insert(props_.equivalence.Find(a));
  }

  const auto& lopts = options_.at(lg);
  const auto& ropts = options_.at(rg);
  for (size_t li = 0; li < lopts.size(); ++li) {
    for (size_t ri = 0; ri < ropts.size(); ++ri) {
      const DistributionProperty& L = lopts[li].prop;
      const DistributionProperty& R = ropts[ri].prop;
      DistributionProperty out;
      bool valid = false;

      bool l_dist = L.kind == DistributionKind::kDistributed;
      bool r_dist = R.kind == DistributionKind::kDistributed;
      if (L.is_control() && R.is_control()) {
        out = DistributionProperty::Control();
        valid = true;
      } else if (L.is_replicated() && R.is_replicated()) {
        out = DistributionProperty::Replicated();
        valid = true;
      } else if (l_dist && R.is_replicated()) {
        // Inner-side lookup table present everywhere: valid for every join
        // type that preserves the left stream's partitioning.
        out = L;
        valid = true;
      } else if (L.is_replicated() && r_dist) {
        // Only inner/cross joins may stream a replicated preserving side
        // against a distributed inner (each row matches on exactly the
        // nodes holding its partners; semi/anti/outer would duplicate or
        // mis-account rows).
        if (j.join_type() == LogicalJoinType::kInner ||
            j.join_type() == LogicalJoinType::kCross) {
          out = R;
          valid = true;
        }
      } else if (l_dist && r_dist) {
        // Collocated join: both sides hash-distributed on columns this
        // join equates.
        if (!L.columns.empty() && L.columns == R.columns) {
          bool all_equated = true;
          for (ColumnId rep : L.columns) {
            if (pair_reps.count(rep) == 0) all_equated = false;
          }
          if (all_equated) {
            out = L;
            valid = true;
          }
        }
      }
      if (!valid) continue;

      PdwOption o;
      o.expr_index = expr_index;
      o.child_options = {static_cast<int>(li), static_cast<int>(ri)};
      o.prop = out;
      o.cost = lopts[li].cost + ropts[ri].cost +
               RelationalCost(g, e, !out.is_replicated() && !out.is_control());
      Consider(gid, std::move(o));
    }
  }
}

void PdwOptimizer::EnumerateAggregate(GroupId gid, int expr_index) {
  const Group& g = memo_->group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(expr_index)];
  const auto& agg = static_cast<const LogicalAggregate&>(*e.op);
  GroupId child = e.children[0];
  const Group& cg = memo_->group(child);
  double n = cost_model_.num_nodes();

  std::set<ColumnId> group_reps;
  for (ColumnId c : agg.group_by()) {
    group_reps.insert(props_.equivalence.Find(c));
  }
  bool splittable = !HasDistinctAggregate(agg);

  // Fig. 4 step 02: partial-aggregate cardinality fixed for the topology —
  // each node produces at most the global group count.
  double local_rows = std::min(cg.cardinality, n * std::max(1.0, g.cardinality));

  const auto& child_opts = options_.at(child);
  for (size_t ci = 0; ci < child_opts.size(); ++ci) {
    const DistributionProperty& C = child_opts[ci].prop;
    double base = child_opts[ci].cost;

    if (C.is_replicated() || C.is_control()) {
      PdwOption o;
      o.expr_index = expr_index;
      o.child_options = {static_cast<int>(ci)};
      o.prop = C;
      o.cost = base + RelationalCost(g, e, false);
      Consider(gid, std::move(o));
      continue;
    }

    // Single-phase local aggregation: the input distribution is a subset
    // of the group-by columns, so every group lives on one node.
    if (C.is_distributed_on_known_columns()) {
      bool subset = true;
      for (ColumnId rep : C.columns) {
        if (group_reps.count(rep) == 0) subset = false;
      }
      if (subset) {
        PdwOption o;
        o.expr_index = expr_index;
        o.child_options = {static_cast<int>(ci)};
        o.prop = C;
        o.cost = base + RelationalCost(g, e, true);
        Consider(gid, std::move(o));
      }
    }

    if (!splittable) continue;

    // Two-phase local/global with a shuffle on each group-by column.
    for (ColumnId gcol : agg.group_by()) {
      ColumnId rep = props_.equivalence.Find(gcol);
      PdwOption o;
      o.expr_index = expr_index;
      o.child_options = {static_cast<int>(ci)};
      o.strategy = DistributedStrategy::kLocalGlobalShuffle;
      o.shuffle_column = gcol;
      o.local_rows = local_rows;
      o.move_cost =
          cost_model_.Cost(DmsOpKind::kShuffle, local_rows, g.row_width);
      o.prop = DistributionProperty::Distributed({rep});
      o.cost = base + o.move_cost + RelationalCost(g, e, true);
      Consider(gid, std::move(o));
    }

    // Two-phase local/gather-to-control/global (the only distributed
    // option for scalar aggregates).
    {
      double moved = agg.group_by().empty() ? n : local_rows;
      PdwOption o;
      o.expr_index = expr_index;
      o.child_options = {static_cast<int>(ci)};
      o.strategy = DistributedStrategy::kLocalGlobalGather;
      o.local_rows = moved;
      o.move_cost =
          cost_model_.Cost(DmsOpKind::kPartitionMove, moved, g.row_width);
      o.prop = DistributionProperty::Control();
      o.cost = base + o.move_cost + RelationalCost(g, e, false);
      Consider(gid, std::move(o));
    }
  }

  EnumeratePreagg(gid, expr_index);
}

std::vector<int> PdwOptimizer::FrontierOptions(GroupId gid) const {
  const std::vector<PdwOption>& opts = options_.at(gid);
  std::vector<int> out;
  for (size_t i = 0; i < opts.size(); ++i) {
    bool seen = false;
    for (int& kept : out) {
      if (opts[static_cast<size_t>(kept)].prop == opts[i].prop) {
        seen = true;
        if (opts[i].cost < opts[static_cast<size_t>(kept)].cost) {
          kept = static_cast<int>(i);
        }
        break;
      }
    }
    if (!seen) out.push_back(static_cast<int>(i));
  }
  return out;
}

void PdwOptimizer::EnumeratePreagg(GroupId gid, int expr_index) {
  if (!ResolvePreaggEnabled(opts_.enable_preagg)) return;
  const Group& g = memo_->group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(expr_index)];
  const auto& agg = static_cast<const LogicalAggregate&>(*e.op);

  // Duplicate-sensitivity gates (DESIGN.md §5i): DISTINCT aggregates are
  // not decomposable, and scalar aggregates (empty GROUP BY) keep the
  // existing at-the-aggregate two-phase path only.
  if (HasDistinctAggregate(agg)) return;
  if (agg.group_by().empty()) return;

  GroupId child = e.children[0];
  const Group& cg = memo_->group(child);
  double n = cost_model_.num_nodes();

  std::set<ColumnId> group_reps;
  for (ColumnId c : agg.group_by()) {
    group_reps.insert(props_.equivalence.Find(c));
  }

  for (size_t je = 0; je < cg.exprs.size(); ++je) {
    const GroupExpr& jx = cg.exprs[je];
    if (jx.op->kind() != LogicalOpKind::kJoin) continue;
    const auto& j = static_cast<const LogicalJoin&>(*jx.op);
    // Only inner joins whose every condition is a clean equi key: residual
    // or non-equi predicates filter *after* the join, so pre-aggregated
    // groups would fold rows such predicates later reject.
    if (j.join_type() != LogicalJoinType::kInner) continue;
    GroupId lg = jx.children[0];
    GroupId rg = jx.children[1];
    auto keys = j.EquiKeys(memo_->group(lg).output, memo_->group(rg).output);
    if (keys.empty() || keys.size() != j.conditions().size()) continue;

    std::set<ColumnId> pair_reps;
    for (const auto& [a, b] : keys) {
      pair_reps.insert(props_.equivalence.Find(a));
    }

    for (int side = 0; side < 2; ++side) {
      GroupId sg = side == 0 ? lg : rg;
      GroupId og = side == 0 ? rg : lg;
      const Group& sgr = memo_->group(sg);
      const Group& ogr = memo_->group(og);

      // Every aggregate argument must come from the pushed side: partial
      // SUM/COUNT/MIN/MAX folds rows *before* the join, so arguments off
      // the other side do not exist yet. COUNT(*) is side-agnostic (the
      // partial count times the uniform join multiplicity is exact).
      bool args_on_side = true;
      for (const auto& item : agg.aggregates()) {
        if (item.arg == nullptr) continue;  // COUNT(*)
        std::set<ColumnId> cols;
        CollectColumns(item.arg, &cols);
        for (ColumnId c : cols) {
          if (FindBinding(sgr.output, c) < 0) args_on_side = false;
        }
      }
      if (!args_on_side) continue;

      // Partial grouping key K = {group-by ∩ side} ∪ {side's equi keys}.
      // All rows in one partial group then share their join-key values, so
      // they join with the same other-side rows (uniform multiplicity) —
      // the soundness condition for SUM/COUNT through an inner equi join.
      std::vector<ColumnId> partial_keys;
      auto add_key = [&partial_keys](ColumnId c) {
        for (ColumnId k : partial_keys) {
          if (k == c) return;
        }
        partial_keys.push_back(c);
      };
      for (ColumnId gc : agg.group_by()) {
        if (FindBinding(sgr.output, gc) >= 0) add_key(gc);
      }
      for (const auto& [a, b] : keys) add_key(side == 0 ? a : b);

      std::set<ColumnId> key_reps;
      for (ColumnId k : partial_keys) {
        key_reps.insert(props_.equivalence.Find(k));
      }

      // Reduction factor: distinct-group estimate over the side's NDVs.
      double d = memo_->estimator().GroupCardinality(partial_keys,
                                                     sgr.cardinality);
      double partial_rows =
          std::min(sgr.cardinality, n * std::max(1.0, d));
      std::vector<ColumnBinding> partial_out;
      for (ColumnId k : partial_keys) {
        int pos = FindBinding(sgr.output, k);
        partial_out.push_back(sgr.output[static_cast<size_t>(pos)]);
      }
      for (const auto& item : agg.aggregates()) {
        partial_out.push_back(item.output);
      }
      double partial_width = memo_->estimator().RowWidth(partial_out);
      double join_rows = std::max(
          1.0, cg.cardinality *
                   std::min(1.0, partial_rows / std::max(1.0, sgr.cardinality)));
      double join_width = partial_width + ogr.row_width;

      PreaggRecipe base_recipe;
      base_recipe.join_expr = static_cast<int>(je);
      base_recipe.side = side;
      base_recipe.partial_keys = partial_keys;
      base_recipe.partial_rows = partial_rows;
      base_recipe.partial_width = partial_width;
      base_recipe.join_rows = join_rows;
      base_recipe.join_width = join_width;

      for (int si : FrontierOptions(sg)) {
        const PdwOption& sopt = options_.at(sg)[static_cast<size_t>(si)];
        if (sopt.prop.is_control()) continue;
        // The reduction-factor CPU term: scanning and hashing the side's
        // rows into partial groups, charged per input byte per node.
        double side_bytes = sgr.cardinality * std::max(1.0, sgr.row_width);
        double cpu = opts_.cost_params.lambda_preagg *
                     (sopt.prop.is_replicated() ? side_bytes : side_bytes / n);

        // The partial output keeps the side's hash distribution only when
        // every hash-column class survives into K.
        DistributionProperty pdist = sopt.prop;
        if (pdist.kind == DistributionKind::kDistributed) {
          for (ColumnId rep : pdist.columns) {
            if (key_reps.count(props_.equivalence.Find(rep)) == 0) {
              pdist = DistributionProperty::AnyDistributed();
              break;
            }
          }
        }

        // Candidate moves of the (reduced) partial stream below the join.
        struct PartialMove {
          bool has = false;
          DmsOpKind kind = DmsOpKind::kShuffle;
          ColumnId col = kInvalidColumnId;
          DistributionProperty dist;
        };
        std::vector<PartialMove> pmoves;
        pmoves.push_back(PartialMove{false, DmsOpKind::kShuffle,
                                     kInvalidColumnId, pdist});
        if (pdist.kind == DistributionKind::kDistributed) {
          if (opts_.hint != sql::DistributionHint::kForceBroadcast) {
            for (ColumnId k : partial_keys) {
              pmoves.push_back(
                  PartialMove{true, DmsOpKind::kShuffle, k,
                              DistributionProperty::Distributed({k})});
            }
          }
          if (opts_.hint != sql::DistributionHint::kForceShuffle) {
            pmoves.push_back(PartialMove{true, DmsOpKind::kBroadcastMove,
                                         kInvalidColumnId,
                                         DistributionProperty::Replicated()});
          }
        }

        for (const PartialMove& pm : pmoves) {
          double pmove_cost =
              pm.has ? cost_model_.Cost(pm.kind, partial_rows, partial_width)
                     : 0;
          DistributionProperty P = pm.dist.Canonical(props_.equivalence);

          for (int oi : FrontierOptions(og)) {
            const PdwOption& oopt = options_.at(og)[static_cast<size_t>(oi)];
            // Join validity — the same rules as EnumerateJoin, with the
            // partial stream standing in for the pushed side.
            const DistributionProperty& L = side == 0 ? P : oopt.prop;
            const DistributionProperty& R = side == 0 ? oopt.prop : P;
            bool l_dist = L.kind == DistributionKind::kDistributed;
            bool r_dist = R.kind == DistributionKind::kDistributed;
            DistributionProperty jdist;
            bool valid = false;
            if (L.is_replicated() && R.is_replicated()) {
              jdist = DistributionProperty::Replicated();
              valid = true;
            } else if (l_dist && R.is_replicated()) {
              jdist = L;
              valid = true;
            } else if (L.is_replicated() && r_dist) {
              jdist = R;
              valid = true;  // inner join: replicated side streams in place
            } else if (l_dist && r_dist && !L.columns.empty() &&
                       L.columns == R.columns) {
              bool all_equated = true;
              for (ColumnId rep : L.columns) {
                if (pair_reps.count(rep) == 0) all_equated = false;
              }
              if (all_equated) {
                jdist = L;
                valid = true;
              }
            }
            if (!valid) continue;

            double base_cost = sopt.cost + oopt.cost + cpu + pmove_cost +
                               RelationalCost(g, e, !jdist.is_replicated());

            auto emit = [&](bool has_gmove, DmsOpKind gkind, ColumnId gcol,
                            double gmove_cost, DistributionProperty final_prop,
                            DistributionProperty global_dist) {
              auto recipe = std::make_shared<PreaggRecipe>(base_recipe);
              recipe->side_option = si;
              recipe->other_option = oi;
              recipe->partial_dist = pdist;
              recipe->has_partial_move = pm.has;
              recipe->partial_move_kind = pm.kind;
              recipe->partial_shuffle_col = pm.col;
              recipe->partial_move_cost = pmove_cost;
              recipe->partial_moved_dist = pm.dist;
              recipe->join_dist = jdist;
              recipe->has_global_move = has_gmove;
              recipe->global_move_kind = gkind;
              recipe->global_shuffle_col = gcol;
              recipe->global_move_cost = gmove_cost;
              recipe->global_dist = global_dist;

              PdwOption o;
              o.expr_index = expr_index;
              o.strategy = DistributedStrategy::kPreaggJoin;
              o.preagg = std::move(recipe);
              o.local_rows = partial_rows;
              o.move_cost = pmove_cost + gmove_cost;
              o.prop = final_prop;
              o.cost = base_cost + gmove_cost;
              Consider(gid, std::move(o));
            };

            if (jdist.is_replicated()) {
              // Every node holds all partials and all other rows: the
              // global aggregate runs in place, replicated.
              emit(false, DmsOpKind::kShuffle, kInvalidColumnId, 0, jdist,
                   jdist);
              continue;
            }
            // In place when the join output is hash-distributed on group-by
            // classes — each final group already lives on one node.
            if (jdist.is_distributed_on_known_columns()) {
              bool subset = true;
              for (ColumnId rep : jdist.columns) {
                if (group_reps.count(rep) == 0) subset = false;
              }
              if (subset) {
                emit(false, DmsOpKind::kShuffle, kInvalidColumnId, 0, jdist,
                     jdist);
              }
            }
            // Shuffle the (reduced) join output on a group-by column.
            if (opts_.hint != sql::DistributionHint::kForceBroadcast) {
              for (ColumnId gcol : agg.group_by()) {
                double gmove = cost_model_.Cost(DmsOpKind::kShuffle, join_rows,
                                                join_width);
                DistributionProperty gdist =
                    DistributionProperty::Distributed({gcol});
                emit(true, DmsOpKind::kShuffle, gcol, gmove, gdist, gdist);
              }
            }
            // Gather the (reduced) join output to the control node.
            {
              double gmove = cost_model_.Cost(DmsOpKind::kPartitionMove,
                                              join_rows, join_width);
              emit(true, DmsOpKind::kPartitionMove, kInvalidColumnId, gmove,
                   DistributionProperty::Control(),
                   DistributionProperty::Control());
            }
          }
        }
      }
    }
  }
}

void PdwOptimizer::EnumerateLimit(GroupId gid, int expr_index) {
  const Group& g = memo_->group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(expr_index)];
  const auto& limit = static_cast<const LogicalLimit&>(*e.op);
  GroupId child = e.children[0];
  const Group& cg = memo_->group(child);
  double n = cost_model_.num_nodes();

  const auto& child_opts = options_.at(child);
  for (size_t ci = 0; ci < child_opts.size(); ++ci) {
    const DistributionProperty& C = child_opts[ci].prop;
    if (C.is_replicated() || C.is_control()) {
      PdwOption o;
      o.expr_index = expr_index;
      o.child_options = {static_cast<int>(ci)};
      o.prop = C;
      o.cost = child_opts[ci].cost;
      Consider(gid, std::move(o));
      continue;
    }
    // Local top-N per node, gather at most N*n rows, re-limit globally.
    double moved =
        std::min(cg.cardinality, static_cast<double>(limit.limit()) * n);
    PdwOption o;
    o.expr_index = expr_index;
    o.child_options = {static_cast<int>(ci)};
    o.strategy = DistributedStrategy::kLocalLimitGather;
    o.local_rows = moved;
    o.move_cost =
        cost_model_.Cost(DmsOpKind::kPartitionMove, moved, g.row_width);
    o.prop = DistributionProperty::Control();
    o.cost = child_opts[ci].cost + o.move_cost;
    Consider(gid, std::move(o));
  }
}

void PdwOptimizer::EnumerateUnionAll(GroupId gid, int expr_index) {
  const Group& g = memo_->group(gid);
  const GroupExpr& e = g.exprs[static_cast<size_t>(expr_index)];
  const auto& u = static_cast<const LogicalUnionAll&>(*e.op);
  size_t n = e.children.size();

  // Odometer over the children's option tables (small: pruning bounds each
  // table by #interesting + 3). A combination is valid when all children
  // share the same distribution kind: mixing replicated and distributed
  // inputs would duplicate or drop rows.
  std::vector<const std::vector<PdwOption>*> tables;
  for (GroupId c : e.children) tables.push_back(&options_.at(c));
  std::vector<size_t> idx(n, 0);
  size_t combos = 0;
  while (true) {
    if (++combos > 20000) break;  // safety valve for very wide unions
    bool all_repl = true, all_ctrl = true, all_dist = true;
    double cost = 0;
    for (size_t i = 0; i < n; ++i) {
      const PdwOption& o = (*tables[i])[idx[i]];
      cost += o.cost;
      all_repl &= o.prop.is_replicated();
      all_ctrl &= o.prop.is_control();
      all_dist &= o.prop.kind == DistributionKind::kDistributed;
    }
    if (all_repl || all_ctrl || all_dist) {
      PdwOption o;
      o.expr_index = expr_index;
      for (size_t i = 0; i < n; ++i) {
        o.child_options.push_back(static_cast<int>(idx[i]));
      }
      if (all_repl) {
        o.prop = DistributionProperty::Replicated();
      } else if (all_ctrl) {
        o.prop = DistributionProperty::Control();
      } else {
        // Collocated union (§3.1): if every child is hash-distributed on
        // the column feeding the same output position, the union output is
        // hash-distributed on that position.
        o.prop = DistributionProperty::AnyDistributed();
        for (size_t pos = 0; pos < u.outputs().size(); ++pos) {
          bool aligned = true;
          for (size_t i = 0; i < n; ++i) {
            const PdwOption& co = (*tables[i])[idx[i]];
            ColumnId feed = u.child_columns()[i][pos];
            if (co.prop.columns.size() != 1 ||
                co.prop.columns[0] != props_.equivalence.Find(feed)) {
              aligned = false;
              break;
            }
          }
          if (aligned) {
            o.prop = DistributionProperty::Distributed({u.outputs()[pos].id});
            break;
          }
        }
      }
      o.cost = cost + RelationalCost(g, e, !o.prop.is_replicated() &&
                                              !o.prop.is_control());
      Consider(gid, std::move(o));
    }
    // Advance the odometer.
    size_t d = 0;
    while (d < n) {
      if (++idx[d] < tables[d]->size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
}

void PdwOptimizer::EnforcerStep(GroupId gid) {
  const Group& g = memo_->group(gid);

  // Enforcer targets: every interesting column class visible in the output,
  // plus Replicated (broadcasts) and Control (gathers) — Fig. 4 step 07.
  std::vector<DistributionProperty> targets;
  auto it = props_.interesting.find(gid);
  if (it != props_.interesting.end()) {
    for (ColumnId rep : it->second) {
      if (MemberInOutput(gid, rep) != kInvalidColumnId) {
        targets.push_back(DistributionProperty::Distributed({rep}));
      }
    }
  }
  targets.push_back(DistributionProperty::Replicated());
  targets.push_back(DistributionProperty::Control());

  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    // Indexes are stable: Consider only appends or improves in place.
    size_t count = options_[gid].size();
    for (size_t i = 0; i < count; ++i) {
      PdwOption src = options_[gid][i];  // copy: vector may grow
      for (const DistributionProperty& target : targets) {
        DistributionProperty canon_target =
            target.Canonical(props_.equivalence);
        if (src.prop == canon_target) continue;

        DmsOpKind kind;
        ColumnId shuffle_col = kInvalidColumnId;
        if (canon_target.kind == DistributionKind::kDistributed) {
          if (opts_.hint == sql::DistributionHint::kForceBroadcast &&
              !src.prop.is_replicated()) {
            continue;  // hint: no shuffles; broadcasts only
          }
          shuffle_col = MemberInOutput(gid, canon_target.columns[0]);
          if (shuffle_col == kInvalidColumnId) continue;
          if (src.prop.is_replicated()) {
            if (!opts_.enable_trim_move) continue;
            kind = DmsOpKind::kTrimMove;
          } else if (src.prop.is_control()) {
            continue;  // control -> distributed is not one of the 7 ops
          } else {
            kind = DmsOpKind::kShuffle;
          }
        } else if (canon_target.is_replicated()) {
          if (opts_.hint == sql::DistributionHint::kForceShuffle) {
            continue;  // hint: no broadcasts; shuffles only
          }
          if (src.prop.is_control()) {
            kind = DmsOpKind::kControlNodeMove;
          } else if (src.prop.kind == DistributionKind::kDistributed) {
            kind = DmsOpKind::kBroadcastMove;
          } else {
            continue;
          }
        } else {  // Control
          if (src.prop.is_replicated()) {
            kind = DmsOpKind::kRemoteCopyToSingle;
          } else if (src.prop.kind == DistributionKind::kDistributed) {
            kind = DmsOpKind::kPartitionMove;
          } else {
            continue;
          }
        }

        PdwOption o;
        o.prop = canon_target;
        o.is_enforcer = true;
        o.move_kind = kind;
        o.source_option = static_cast<int>(i);
        o.shuffle_column = shuffle_col;
        o.move_cost = cost_model_.Cost(kind, g.cardinality, g.row_width);
        o.cost = src.cost + o.move_cost;
        changed |= Consider(gid, std::move(o));
      }
    }
    if (!changed) break;
  }
}

Result<PlanNodePtr> PdwOptimizer::BuildPlan(GroupId gid,
                                            int option_index) const {
  const Group& g = memo_->group(gid);
  const PdwOption& o = options_.at(gid)[static_cast<size_t>(option_index)];

  if (o.is_enforcer) {
    PDW_ASSIGN_OR_RETURN(PlanNodePtr child, BuildPlan(gid, o.source_option));
    bool child_sorted = child->kind == PhysOpKind::kSort;
    std::vector<SortItem> sort_items = child->sort_items;

    auto move = std::make_unique<PlanNode>();
    move->kind = PhysOpKind::kMove;
    move->move_kind = o.move_kind;
    if (o.shuffle_column != kInvalidColumnId) {
      move->shuffle_columns = {o.shuffle_column};
    }
    move->output = child->output;
    move->cardinality = g.cardinality;
    move->row_width = g.row_width;
    move->move_cost = o.move_cost;
    move->distribution = o.prop;
    if (o.shuffle_column != kInvalidColumnId) {
      move->distribution = DistributionProperty::Distributed({o.shuffle_column});
    }
    move->children.push_back(std::move(child));

    if (!child_sorted) return move;
    // A move destroys per-node order; restore it above the move.
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PhysOpKind::kSort;
    sort->sort_items = std::move(sort_items);
    sort->output = move->output;
    sort->cardinality = move->cardinality;
    sort->row_width = move->row_width;
    sort->distribution = move->distribution;
    sort->children.push_back(std::move(move));
    return sort;
  }

  const GroupExpr& e = g.exprs[static_cast<size_t>(o.expr_index)];

  if (o.strategy == DistributedStrategy::kPreaggJoin) {
    // Pushed-down shape: GlobalAgg -> [Move] -> Join -> [Move] ->
    // PartialAgg(local) -> side, with the other join input built normally.
    const auto& agg = static_cast<const LogicalAggregate&>(*e.op);
    const Group& cg = memo_->group(e.children[0]);
    const PreaggRecipe& r = *o.preagg;
    const GroupExpr& jx = cg.exprs[static_cast<size_t>(r.join_expr)];
    GroupId sg = jx.children[static_cast<size_t>(r.side)];
    GroupId og = jx.children[static_cast<size_t>(1 - r.side)];
    const Group& sgr = memo_->group(sg);
    PDW_ASSIGN_OR_RETURN(PlanNodePtr side_plan, BuildPlan(sg, r.side_option));
    PDW_ASSIGN_OR_RETURN(PlanNodePtr other_plan,
                         BuildPlan(og, r.other_option));
    DistributionProperty side_dist = side_plan->distribution;

    auto partial = std::make_unique<PlanNode>();
    partial->kind = PhysOpKind::kHashAggregate;
    partial->agg_phase = AggPhase::kLocal;
    partial->group_by = r.partial_keys;
    partial->aggregates = agg.aggregates();
    for (ColumnId k : r.partial_keys) {
      int pos = FindBinding(sgr.output, k);
      if (pos < 0) return Status::Internal("partial key missing from side");
      partial->output.push_back(sgr.output[static_cast<size_t>(pos)]);
    }
    for (const auto& item : agg.aggregates()) {
      partial->output.push_back(item.output);
    }
    partial->cardinality = r.partial_rows;
    partial->row_width = r.partial_width;
    // Prefer the concrete child distribution for display when preserved.
    partial->distribution =
        r.partial_dist.kind == DistributionKind::kDistributed &&
                side_dist.kind == DistributionKind::kDistributed &&
                !side_dist.columns.empty()
            ? side_dist
            : r.partial_dist;
    partial->children.push_back(std::move(side_plan));

    PlanNodePtr partial_top = std::move(partial);
    if (r.has_partial_move) {
      auto move = std::make_unique<PlanNode>();
      move->kind = PhysOpKind::kMove;
      move->move_kind = r.partial_move_kind;
      if (r.partial_shuffle_col != kInvalidColumnId) {
        move->shuffle_columns = {r.partial_shuffle_col};
      }
      move->output = partial_top->output;
      move->cardinality = r.partial_rows;
      move->row_width = r.partial_width;
      move->move_cost = r.partial_move_cost;
      move->distribution = r.partial_moved_dist;
      move->children.push_back(std::move(partial_top));
      partial_top = std::move(move);
    }

    std::vector<PlanNodePtr> join_children(2);
    join_children[static_cast<size_t>(r.side)] = std::move(partial_top);
    join_children[static_cast<size_t>(1 - r.side)] = std::move(other_plan);
    PlanNodePtr join = PlanNodeFromPayload(*jx.op, std::move(join_children),
                                           r.join_rows, r.join_width);
    join->distribution = r.join_dist;

    PlanNodePtr join_top = std::move(join);
    if (r.has_global_move) {
      auto move = std::make_unique<PlanNode>();
      move->kind = PhysOpKind::kMove;
      move->move_kind = r.global_move_kind;
      if (r.global_shuffle_col != kInvalidColumnId) {
        move->shuffle_columns = {r.global_shuffle_col};
      }
      move->output = join_top->output;
      move->cardinality = r.join_rows;
      move->row_width = r.join_width;
      move->move_cost = r.global_move_cost;
      move->distribution = r.global_dist;
      move->children.push_back(std::move(join_top));
      join_top = std::move(move);
    }

    auto global = std::make_unique<PlanNode>();
    global->kind = PhysOpKind::kHashAggregate;
    global->agg_phase = AggPhase::kGlobal;
    global->group_by = agg.group_by();
    for (const auto& item : agg.aggregates()) {
      PDW_ASSIGN_OR_RETURN(AggregateItem gi, GlobalPhaseItem(item));
      global->aggregates.push_back(std::move(gi));
    }
    global->output = g.output;
    global->cardinality = g.cardinality;
    global->row_width = g.row_width;
    global->distribution = r.global_dist;
    global->children.push_back(std::move(join_top));
    return PlanNodePtr(std::move(global));
  }

  std::vector<PlanNodePtr> children;
  for (size_t i = 0; i < e.children.size(); ++i) {
    PDW_ASSIGN_OR_RETURN(PlanNodePtr c,
                         BuildPlan(e.children[i], o.child_options[i]));
    children.push_back(std::move(c));
  }

  if (o.strategy == DistributedStrategy::kPlain) {
    DistributionProperty child_dist =
        children.empty() ? o.prop : children[0]->distribution;
    PlanNodePtr node = PlanNodeFromPayload(*e.op, std::move(children),
                                           g.cardinality, g.row_width);
    node->distribution = o.prop;
    // Prefer the concrete (non-canonical) child distribution for display.
    if (o.prop.kind == DistributionKind::kDistributed &&
        child_dist.kind == DistributionKind::kDistributed &&
        !child_dist.columns.empty()) {
      node->distribution = child_dist;
    }
    return node;
  }

  if (o.strategy == DistributedStrategy::kLocalLimitGather) {
    const auto& limit = static_cast<const LogicalLimit&>(*e.op);
    PlanNodePtr child = std::move(children[0]);
    bool child_sorted = child->kind == PhysOpKind::kSort;
    std::vector<SortItem> sort_items = child->sort_items;
    DistributionProperty child_dist = child->distribution;

    auto local = std::make_unique<PlanNode>();
    local->kind = PhysOpKind::kLimit;
    local->limit = limit.limit();
    local->output = child->output;
    local->cardinality = o.local_rows;
    local->row_width = g.row_width;
    local->distribution = child_dist;
    local->children.push_back(std::move(child));

    auto move = std::make_unique<PlanNode>();
    move->kind = PhysOpKind::kMove;
    move->move_kind = DmsOpKind::kPartitionMove;
    move->output = local->output;
    move->cardinality = o.local_rows;
    move->row_width = g.row_width;
    move->move_cost = o.move_cost;
    move->distribution = DistributionProperty::Control();
    move->children.push_back(std::move(local));

    PlanNodePtr top = std::move(move);
    if (child_sorted) {
      auto sort = std::make_unique<PlanNode>();
      sort->kind = PhysOpKind::kSort;
      sort->sort_items = sort_items;
      sort->output = top->output;
      sort->cardinality = top->cardinality;
      sort->row_width = top->row_width;
      sort->distribution = top->distribution;
      sort->children.push_back(std::move(top));
      top = std::move(sort);
    }
    auto global = std::make_unique<PlanNode>();
    global->kind = PhysOpKind::kLimit;
    global->limit = limit.limit();
    global->output = top->output;
    global->cardinality = g.cardinality;
    global->row_width = g.row_width;
    global->distribution = DistributionProperty::Control();
    global->children.push_back(std::move(top));
    return global;
  }

  // Local/global aggregation strategies.
  const auto& agg = static_cast<const LogicalAggregate&>(*e.op);
  PlanNodePtr child = std::move(children[0]);
  DistributionProperty child_dist = child->distribution;

  std::vector<PlanNodePtr> local_children;
  local_children.push_back(std::move(child));
  PlanNodePtr local = PlanNodeFromPayload(*e.op, std::move(local_children),
                                          o.local_rows, g.row_width);
  local->agg_phase = AggPhase::kLocal;
  local->distribution = child_dist;

  auto move = std::make_unique<PlanNode>();
  move->kind = PhysOpKind::kMove;
  move->output = local->output;
  move->cardinality = o.local_rows;
  move->row_width = g.row_width;
  move->move_cost = o.move_cost;
  if (o.strategy == DistributedStrategy::kLocalGlobalShuffle) {
    move->move_kind = DmsOpKind::kShuffle;
    move->shuffle_columns = {o.shuffle_column};
    move->distribution = DistributionProperty::Distributed({o.shuffle_column});
  } else {
    move->move_kind = DmsOpKind::kPartitionMove;
    move->distribution = DistributionProperty::Control();
  }
  move->children.push_back(std::move(local));

  auto global = std::make_unique<PlanNode>();
  global->kind = PhysOpKind::kHashAggregate;
  global->agg_phase = AggPhase::kGlobal;
  global->group_by = agg.group_by();
  for (const auto& item : agg.aggregates()) {
    PDW_ASSIGN_OR_RETURN(AggregateItem gi, GlobalPhaseItem(item));
    global->aggregates.push_back(std::move(gi));
  }
  global->output = move->output;
  global->cardinality = g.cardinality;
  global->row_width = g.row_width;
  global->distribution = move->distribution;
  global->children.push_back(std::move(move));
  return global;
}

Result<PdwPlanResult> PdwOptimizer::Optimize() {
  if (memo_->root() == kInvalidGroupId) {
    return Status::Internal("memo has no root group");
  }
  const int threads = ResolveOptThreads(opts_.opt_threads);
  bool swept = false;
  if (threads != 1) {
    // Level-ordered parallel sweep: every child of a level-L group lives
    // strictly below L, so its option table is complete before L starts.
    // Falls back to the recursion when the memo can't be leveled.
    Result<std::vector<std::vector<GroupId>>> levels =
        MemoLevels(*memo_, memo_->root());
    if (levels.ok()) {
      // Pre-create every reachable group's table so the map's structure is
      // frozen during the sweep — Consider then only mutates its own
      // group's vector, and child lookups are pure reads.
      for (const std::vector<GroupId>& level : *levels) {
        for (GroupId gid : level) options_[gid];
      }
      ThreadPool& pool = ThreadPool::Global();
      for (const std::vector<GroupId>& level : *levels) {
        pool.ParallelFor(
            static_cast<int>(level.size()),
            [&](int i) {
              GroupId gid = level[static_cast<size_t>(i)];
              const Group& g = memo_->group(gid);
              for (size_t ei = 0; ei < g.exprs.size(); ++ei) {
                EnumerateExpr(gid, static_cast<int>(ei));
              }
              EnforcerStep(gid);
            },
            threads);
        for (GroupId gid : level) done_.insert(gid);
      }
      swept = true;
    }
  }
  if (!swept) OptimizeGroup(memo_->root());

  // The final Return operation streams per-node results back to the client
  // (paper §2.3: such queries involve no DMS), so the root may finish under
  // any distribution property; the engine's result assembly merges sorted
  // streams and deduplicates replicated ones.
  const auto& root_opts = options_.at(memo_->root());
  double best = kInfiniteCost;
  int best_idx = -1;
  for (size_t i = 0; i < root_opts.size(); ++i) {
    if (root_opts[i].cost < best) {
      best = root_opts[i].cost;
      best_idx = static_cast<int>(i);
    }
  }
  if (best_idx < 0) {
    return Status::Internal("no control-node plan found for root group");
  }

  PdwPlanResult result;
  PDW_ASSIGN_OR_RETURN(result.plan, BuildPlan(memo_->root(), best_idx));
  result.cost = best;
  result.options_considered = considered_;
  for (const auto& [gid, opts] : options_) result.options_kept += opts.size();
  result.options_pruned = considered_ - result.options_kept;
  result.enforcers_inserted = enforcers_kept_;
  result.groups_optimized = done_.size();
  result.preagg_considered = preagg_considered_;
  result.preagg_kept = preagg_kept_;
  result.preagg_chosen = PlanUsesPreagg(*result.plan);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.Count("optimizer.runs");
  reg.Count("optimizer.groups", static_cast<double>(result.groups_optimized));
  reg.Count("optimizer.options_generated",
            static_cast<double>(result.options_considered));
  reg.Count("optimizer.options_pruned",
            static_cast<double>(result.options_pruned));
  reg.Count("optimizer.enforcers_inserted",
            static_cast<double>(result.enforcers_inserted));
  reg.Count("optimizer.preagg.considered",
            static_cast<double>(result.preagg_considered));
  reg.Count("optimizer.preagg.kept",
            static_cast<double>(result.preagg_kept));
  if (result.preagg_chosen) reg.Count("optimizer.preagg.chosen");
  return result;
}

}  // namespace pdw
