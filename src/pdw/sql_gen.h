#ifndef PDW_PDW_SQL_GEN_H_
#define PDW_PDW_SQL_GEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan_node.h"

namespace pdw {

/// A generated SQL statement plus the column names it exposes, aligned
/// with the source node's `output` bindings.
struct GeneratedSql {
  std::string sql;
  std::vector<std::string> column_names;
};

/// Translates a physical operator subtree (no Move nodes) back into a SQL
/// statement with nested derived tables — the QRel-style relational-tree ->
/// SQL generation of Fig. 6, producing text in the flavour of Fig. 7
/// ("SELECT T1_1.x AS x FROM (...) AS T1_1 INNER JOIN ...").
///
/// The emitted SQL is executable by this library's own engine: compute
/// nodes re-parse and run it against their local base + temp tables, so
/// generation correctness is enforced end-to-end. Semi/anti joins render
/// as EXISTS / NOT EXISTS; local Sort nodes below the root are elided
/// (ordering is re-established at the Return step).
///
/// `database_prefix` decorates base tables ("[tpch].[dbo]."); temp scans
/// always use "[tempdb].[dbo].".
Result<GeneratedSql> GenerateSql(const PlanNode& subtree,
                                 const std::string& database_prefix = "tpch");

}  // namespace pdw

#endif  // PDW_PDW_SQL_GEN_H_
