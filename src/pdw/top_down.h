#ifndef PDW_PDW_TOP_DOWN_H_
#define PDW_PDW_TOP_DOWN_H_

#include <map>
#include <set>
#include <vector>

#include "optimizer/memo.h"
#include "pdw/cost_model.h"
#include "pdw/interesting_props.h"
#include "plan/plan_node.h"

namespace pdw {

/// Demand-driven ("top-down") variant of the PDW parallel optimizer. The
/// paper's §3.2 notes that while the shipped implementation enumerates
/// bottom-up, "a top-down enumeration technique is equally applicable to
/// the PDW QO design" — this class demonstrates that: it memoizes
/// BestCost(group, required distribution property) and only explores
/// (group, property) states actually demanded from the root, instead of
/// materializing every group's full option table.
///
/// Both optimizers share the cost model and property algebra, so they must
/// agree on the optimal plan cost (asserted by tests and compared by
/// bench_top_down); they differ in how much of the space they touch.
///
/// Cross-group demands follow the memo DAG strictly downward, while
/// enforcer moves connect properties *within* one group; the implementation
/// therefore computes a whole group's property table on first demand
/// (children first, then an intra-group move relaxation to fixpoint), which
/// avoids the cycle-cutting pitfalls of naive per-(group, property)
/// memoization.
class TopDownPdwOptimizer {
 public:
  struct Options {
    DmsCostParameters cost_params;
    bool enable_trim_move = true;
    /// Partial-aggregate pushdown below joins (PR 9); same semantics as
    /// PdwOptimizerOptions::enable_preagg (-1 = PDW_OPT_PREAGG env).
    int enable_preagg = -1;
  };

  struct Stats {
    size_t states_computed = 0;   ///< Distinct (group, property) demands.
    size_t states_requested = 0;  ///< Total demands incl. memo hits.
  };

  TopDownPdwOptimizer(Memo* memo, const Topology& topology, Options options);
  TopDownPdwOptimizer(Memo* memo, const Topology& topology)
      : TopDownPdwOptimizer(memo, topology, Options()) {}

  /// Cheapest cost of producing `gid` under any final property (the free
  /// Return). Populates the demand memo.
  Result<double> OptimalCost();

  /// Cheapest cost of `gid` under a specific canonical property;
  /// kInfiniteCost when unachievable.
  double BestCost(GroupId gid, const DistributionProperty& prop);

  const Stats& stats() const { return stats_; }
  const InterestingProperties& interesting() const { return props_; }

 private:
  using Key = std::pair<GroupId, DistributionProperty>;

  /// Computes the full candidate-property cost table of a group: direct
  /// costs per property, then move-edge relaxation to fixpoint.
  void ComputeGroup(GroupId gid);
  /// Cost of the one-hop move realizing `target` from `src` for this
  /// group's stream, or infinity when no DMS operation applies.
  double MoveEdge(GroupId gid, const DistributionProperty& src,
                  const DistributionProperty& target) const;
  /// Direct (non-enforcer) realizations of `prop` from the group's exprs.
  double DirectCost(GroupId gid, const DistributionProperty& prop);
  /// Cheapest pre-aggregation pushdown realization of aggregate expr `e`
  /// under `prop`: a partial aggregate below one join of the input group,
  /// global phase above (mirrors PdwOptimizer::EnumeratePreagg, PR 9).
  double PreaggCost(GroupId gid, const GroupExpr& e,
                    const DistributionProperty& prop);
  /// Candidate source properties for enforcers and "any" demands.
  std::vector<DistributionProperty> CandidateProps(GroupId gid);
  /// Cheapest distributed realization (used for "any distribution works").
  double BestAnyDistributed(GroupId gid);

  Memo* memo_;
  Options opts_;
  DmsCostModel cost_model_;
  InterestingProperties props_;
  std::map<Key, double> table_;
  std::set<GroupId> group_done_;
  Stats stats_;
};

}  // namespace pdw

#endif  // PDW_PDW_TOP_DOWN_H_
