#include "pdw/plan_cache.h"

#include <cctype>

#include "common/fault.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "optimizer/memo.h"

namespace pdw {

std::string NormalizeSqlForPlanCache(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_literal = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_literal) {
      out.push_back(c);
      if (c == '\'') in_literal = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_literal = true;
      out.push_back(c);
      continue;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string FingerprintCompilerOptions(const PdwCompilerOptions& o) {
  // %a renders doubles exactly (hex float), so two λ sets that differ in
  // any bit fingerprint differently. The beam width is resolved before
  // fingerprinting because the env default changes the plan shape just like
  // an explicit option; opt_threads is deliberately excluded — parallel
  // enumeration is byte-identical to serial, so thread count never changes
  // the plan.
  // The preagg switch is resolved like the beam width: the PDW_OPT_PREAGG
  // env default changes the plan shape exactly as the explicit option does,
  // so cached pushed-down plans never serve a pushdown-disabled query (or
  // vice versa).
  return StringFormat(
      "memo:%d,%d,%d,%d,%d,b%d|norm:%d,%d,%d,%d,%d,%d|"
      "pdw:%a,%a,%a,%a,%a,%a,h%d,p%d,%zu,t%d,r%d,%a,pa%d|xml:%d|base:%d",
      o.memo.max_dp_relations, o.memo.expr_budget,
      o.memo.seed_distribution_aware ? 1 : 0,
      o.memo.enable_semijoin_to_join ? 1 : 0, o.memo.enumerate_joins ? 1 : 0,
      ResolveBeamWidth(o.memo.beam_width),
      o.normalizer.fold_constants ? 1 : 0, o.normalizer.push_predicates ? 1 : 0,
      o.normalizer.transitive_closure ? 1 : 0,
      o.normalizer.detect_contradictions ? 1 : 0,
      o.normalizer.eliminate_redundant_joins ? 1 : 0,
      o.normalizer.prune_columns ? 1 : 0, o.pdw.cost_params.lambda_reader_direct,
      o.pdw.cost_params.lambda_reader_hash, o.pdw.cost_params.lambda_network,
      o.pdw.cost_params.lambda_writer, o.pdw.cost_params.lambda_bulkcopy,
      o.pdw.cost_params.lambda_preagg,
      static_cast<int>(o.pdw.hint), o.pdw.prune ? 1 : 0,
      o.pdw.max_options_per_group, o.pdw.enable_trim_move ? 1 : 0,
      o.pdw.relational_costs ? 1 : 0, o.pdw.relational_lambda,
      ResolvePreaggEnabled(o.pdw.enable_preagg) ? 1 : 0,
      o.use_xml_interface ? 1 : 0, o.build_baseline ? 1 : 0);
}

uint64_t TableVersionTracker::Version(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(ToLower(table));
  return it == versions_.end() ? 0 : it->second;
}

void TableVersionTracker::Bump(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  ++versions_[ToLower(table)];
}

bool TableVersionTracker::IsCurrent(
    const std::vector<std::pair<std::string, uint64_t>>& versions) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [table, version] : versions) {
    auto it = versions_.find(table);
    uint64_t current = it == versions_.end() ? 0 : it->second;
    if (current != version) return false;
  }
  return true;
}

PlanCache::PlanCache(size_t capacity,
                     std::shared_ptr<TableVersionTracker> versions)
    : capacity_(capacity),
      versions_(versions != nullptr ? std::move(versions)
                                    : std::make_shared<TableVersionTracker>()) {
}

uint64_t PlanCache::TableVersion(const std::string& table) const {
  return versions_->Version(table);
}

void PlanCache::BumpTableVersion(const std::string& table) {
  versions_->Bump(table);
}

std::optional<CachedDsqlPlan> PlanCache::Lookup(
    const std::string& normalized_sql, const std::string& options_fingerprint) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key(normalized_sql, options_fingerprint));
  if (it == index_.end()) {
    ++stats_.misses;
    reg.Count("plan_cache.miss");
    return std::nullopt;
  }
  if (!versions_->IsCurrent(it->second->plan.table_versions)) {
    // Stale statistics: drop the entry so it recompiles fresh.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.misses;
    ++stats_.invalidations;
    reg.Count("plan_cache.miss");
    reg.Count("plan_cache.invalidation");
    reg.SetGauge("plan_cache.size", static_cast<double>(lru_.size()));
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  ++stats_.hits;
  ++it->second->hits;
  reg.Count("plan_cache.hit");
  return it->second->plan;
}

void PlanCache::Insert(const std::string& normalized_sql,
                       const std::string& options_fingerprint,
                       CachedDsqlPlan plan) {
  if (capacity_ == 0) return;
  // An injected control-node failure while filling the cache degrades the
  // query to uncached execution — it must never fail the query itself.
  if (!fault::Check("plan_cache.fill").ok()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(normalized_sql, options_fingerprint);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(plan), /*hits=*/0});
    index_[std::move(key)] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
      reg.Count("plan_cache.eviction");
    }
  }
  ++stats_.insertions;
  reg.SetGauge("plan_cache.size", static_cast<double>(lru_.size()));
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  obs::MetricsRegistry::Global().SetGauge("plan_cache.size", 0);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<PlanCache::EntryInfo> PlanCache::ListEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {
    EntryInfo info;
    // The key is fingerprint + '\n' + normalized SQL (see Key()).
    size_t nl = e.key.find('\n');
    if (nl == std::string::npos) {
      info.normalized_sql = e.key;
    } else {
      info.options_fingerprint = e.key.substr(0, nl);
      info.normalized_sql = e.key.substr(nl + 1);
    }
    info.hits = e.hits;
    info.num_steps = static_cast<int>(e.plan.dsql.steps.size());
    info.modeled_cost = e.plan.modeled_cost;
    for (const auto& [table, version] : e.plan.table_versions) {
      info.tables.push_back(table);
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace pdw
