#include "pdw/cost_model.h"

#include <algorithm>

#include "common/string_util.h"

namespace pdw {

std::string DmsCostModel::Breakdown::ToString() const {
  return StringFormat(
      "reader=%.6f network=%.6f writer=%.6f bulkcopy=%.6f "
      "source=%.6f target=%.6f total=%.6f",
      c_reader, c_network, c_writer, c_bulkcopy, c_source, c_target, total);
}

DmsCostModel::Breakdown DmsCostModel::CostBreakdown(DmsOpKind kind,
                                                    double rows,
                                                    double width) const {
  double total_bytes = std::max(0.0, rows) * std::max(1.0, width);
  double n = static_cast<double>(nodes_);
  double dist = total_bytes / n;  // per-node share of a distributed stream
  double full = total_bytes;     // replicated / single-node stream

  Breakdown b;
  double lambda_reader = params_.lambda_reader_direct;
  switch (kind) {
    case DmsOpKind::kShuffle:
      // Distributed -> distributed, hashing on the reader.
      lambda_reader = params_.lambda_reader_hash;
      b.bytes_reader = dist;
      b.bytes_network = dist;
      b.bytes_writer = dist;
      b.bytes_bulkcopy = dist;
      break;
    case DmsOpKind::kPartitionMove:
      // Distributed -> single node: the target ingests everything.
      b.bytes_reader = dist;
      b.bytes_network = dist;
      b.bytes_writer = full;
      b.bytes_bulkcopy = full;
      break;
    case DmsOpKind::kControlNodeMove:
      // Single (control) node -> replicated on all compute nodes.
      b.bytes_reader = full;
      b.bytes_network = full;
      b.bytes_writer = full;
      b.bytes_bulkcopy = full;
      break;
    case DmsOpKind::kBroadcastMove:
      // Distributed -> replicated: every node sends its slice to everyone
      // and ingests the whole stream. The target side carries N times the
      // shuffle volume — the broadcast-vs-shuffle tradeoff of Fig. 7.
      b.bytes_reader = dist;
      b.bytes_network = full;  // each node emits ~ (N-1)/N * Y*w ~= Y*w
      b.bytes_writer = full;
      b.bytes_bulkcopy = full;
      break;
    case DmsOpKind::kTrimMove:
      // Replicated -> distributed on own node: pure local hashing, no
      // network traffic at all.
      lambda_reader = params_.lambda_reader_hash;
      b.bytes_reader = full;
      b.bytes_network = 0;
      b.bytes_writer = dist;
      b.bytes_bulkcopy = dist;
      break;
    case DmsOpKind::kReplicatedBroadcast:
      // One compute node -> replicated everywhere.
      b.bytes_reader = full;
      b.bytes_network = full;
      b.bytes_writer = full;
      b.bytes_bulkcopy = full;
      break;
    case DmsOpKind::kRemoteCopyToSingle:
      // Everything -> one designated node.
      b.bytes_reader = dist;
      b.bytes_network = dist;
      b.bytes_writer = full;
      b.bytes_bulkcopy = full;
      break;
  }
  b.c_reader = b.bytes_reader * lambda_reader;
  b.c_network = b.bytes_network * params_.lambda_network;
  b.c_writer = b.bytes_writer * params_.lambda_writer;
  b.c_bulkcopy = b.bytes_bulkcopy * params_.lambda_bulkcopy;
  b.c_source = std::max(b.c_reader, b.c_network);
  b.c_target = std::max(b.c_writer, b.c_bulkcopy);
  b.total = std::max(b.c_source, b.c_target);
  return b;
}

}  // namespace pdw
