#include "pdw/interesting_props.h"

#include <deque>

namespace pdw {

namespace {

/// True if any member of `rep`'s equivalence class appears in `output`.
bool ClassVisibleIn(const std::vector<ColumnBinding>& output, ColumnId rep,
                    const ColumnEquivalence& equiv) {
  for (const auto& b : output) {
    if (equiv.Find(b.id) == rep) return true;
  }
  return false;
}

}  // namespace

InterestingProperties DeriveInterestingProperties(const Memo& memo) {
  InterestingProperties out;

  // Pass 1: equivalence classes from every equi join condition anywhere in
  // the search space.
  for (int gi = 0; gi < memo.num_groups(); ++gi) {
    for (const auto& e : memo.group(gi).exprs) {
      if (e.op->kind() != LogicalOpKind::kJoin) continue;
      const auto& j = static_cast<const LogicalJoin&>(*e.op);
      for (const auto& cond : j.conditions()) {
        ColumnId a, b;
        if (IsColumnEquality(cond, &a, &b)) out.equivalence.AddEquality(a, b);
      }
    }
  }

  // Pass 2: top-down propagation to a fixpoint over all groups.
  auto add_interesting = [&](GroupId g, ColumnId col) {
    ColumnId rep = out.equivalence.Find(col);
    if (!ClassVisibleIn(memo.group(g).output, rep, out.equivalence)) {
      return false;
    }
    return out.interesting[g].insert(rep).second;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (int gid = 0; gid < memo.num_groups(); ++gid) {
      const Group& g = memo.group(gid);
      std::set<ColumnId> own = out.interesting[gid];  // copy: map mutates
      for (const auto& e : g.exprs) {
        // (a) join columns become interesting for both inputs, and for the
        // join's own group (a parent join may reuse the distribution).
        if (e.op->kind() == LogicalOpKind::kJoin) {
          const auto& j = static_cast<const LogicalJoin&>(*e.op);
          for (const auto& cond : j.conditions()) {
            ColumnId a, b;
            if (!IsColumnEquality(cond, &a, &b)) continue;
            for (GroupId child : e.children) {
              changed |= add_interesting(child, a);
              changed |= add_interesting(child, b);
            }
            changed |= add_interesting(gid, a);
          }
        }
        // (b) group-by columns become interesting for the input — and,
        // for the pre-aggregation pushdown (PR 9), directly for the join
        // inputs below it: a side already hash-distributed on a group-by
        // class feeds a pushed partial aggregate with no extra move. The
        // general parent-to-child flow below reaches the same fixpoint;
        // seeding it here makes the pushdown's property demand explicit.
        if (e.op->kind() == LogicalOpKind::kAggregate) {
          const auto& a = static_cast<const LogicalAggregate&>(*e.op);
          for (ColumnId col : a.group_by()) {
            changed |= add_interesting(e.children[0], col);
            for (const auto& ce : memo.group(e.children[0]).exprs) {
              if (ce.op->kind() != LogicalOpKind::kJoin) continue;
              for (GroupId jc : ce.children) {
                changed |= add_interesting(jc, col);
              }
            }
          }
        }
        // Parent-visible interesting columns flow down to any child whose
        // output exposes a member of the class.
        for (ColumnId rep : own) {
          for (GroupId child : e.children) {
            changed |= add_interesting(child, rep);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace pdw
