#ifndef PDW_PDW_RESULT_CACHE_H_
#define PDW_PDW_RESULT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/row.h"
#include "pdw/plan_cache.h"

namespace pdw {

/// One finished query result as the control node retains it: the rows a
/// byte-identical re-execution would produce, plus the compile-side
/// annotations a cache hit must still report, plus the statistics versions
/// anchoring invalidation (same machinery as the plan cache).
struct CachedQueryResult {
  std::vector<std::string> column_names;
  RowVector rows;
  std::string plan_text;
  double modeled_cost = 0;
  std::vector<std::pair<std::string, uint64_t>> table_versions;
};

/// The control node's keyed result cache plus in-flight coalescing — the
/// degenerate-but-high-value case of GLADE-style shared work: two identical
/// queries running at once do the work once.
///
/// Keying mirrors the plan cache: (normalized SQL, compiler-options
/// fingerprint). Invalidation is stats-versioned through the shared
/// TableVersionTracker, so LoadRows / RefreshStatistics on any scanned
/// table drops dependent results exactly as it drops dependent plans.
///
/// Coalescing protocol (LookupOrJoin):
///  * LRU hit  -> the cached result is returned immediately.
///  * miss, no identical query in flight -> the caller becomes the
///    *leader*: it must execute the query and then call Publish (success)
///    or FailFlight (error) with the same key.
///  * miss, identical query in flight -> the caller becomes a *follower*
///    and blocks until the leader publishes; it receives a copy of the
///    leader's rows (byte-identical by construction). When the leader
///    fails, followers are released to retry LookupOrJoin — the first one
///    back becomes the new leader, so one cancelled or faulted leader
///    never poisons innocent concurrent sessions.
///
/// All methods are thread-safe. Counters mirror into the obs metrics
/// registry as result_cache.* (hit/miss/invalidation/coalesced/...).
class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;         ///< Includes invalidations.
    uint64_t invalidations = 0;  ///< Misses caused by stale statistics.
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t coalesced = 0;      ///< Follower waits served by a leader.
  };

  /// Introspection row of one cached result, as surfaced through the
  /// sys.dm_pdw_result_cache system view (MRU first).
  struct EntryInfo {
    std::string normalized_sql;
    std::string options_fingerprint;
    uint64_t hits = 0;
    int64_t rows = 0;
    double modeled_cost = 0;
    std::vector<std::string> tables;  ///< Invalidation anchors.
  };

  /// `versions` must be the same tracker the plan cache uses (the
  /// appliance's); null creates a private one for standalone tests.
  explicit ResultCache(size_t capacity = 64,
                       std::shared_ptr<TableVersionTracker> versions = nullptr);

  /// The coalescing entry point (see class comment). Returns the cached or
  /// leader-published result, or std::nullopt when the caller has become
  /// the leader and owns the execute-then-Publish/FailFlight obligation.
  /// `coalesced` (optional) is set when the result came from waiting on an
  /// in-flight leader rather than the LRU.
  std::optional<CachedQueryResult> LookupOrJoin(
      const std::string& normalized_sql,
      const std::string& options_fingerprint, bool* coalesced = nullptr);

  /// Plain lookup with no coalescing side effects (DMV/test use).
  std::optional<CachedQueryResult> Lookup(
      const std::string& normalized_sql,
      const std::string& options_fingerprint);

  /// Leader success: wakes followers with a copy of `result` and inserts
  /// it into the LRU (evicting the least recently used beyond capacity).
  void Publish(const std::string& normalized_sql,
               const std::string& options_fingerprint,
               CachedQueryResult result);

  /// Leader failure: wakes followers empty-handed so one of them retries
  /// as the new leader. The failed execution inserts nothing.
  void FailFlight(const std::string& normalized_sql,
                  const std::string& options_fingerprint);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;
  const std::shared_ptr<TableVersionTracker>& versions() const {
    return versions_;
  }

  /// Point-in-time copy of every cached entry, MRU first, for DMV queries.
  std::vector<EntryInfo> ListEntries() const;

 private:
  struct Entry {
    std::string key;
    CachedQueryResult result;
    uint64_t hits = 0;
  };

  /// One in-flight execution identical queries coalesce onto. Followers
  /// hold the shared_ptr, so a leader resolving (and erasing the map
  /// entry) never invalidates a waiter mid-wait.
  struct InFlight {
    bool done = false;
    bool ok = false;
    CachedQueryResult result;  ///< Valid when done && ok.
  };

  std::string Key(const std::string& normalized_sql,
                  const std::string& options_fingerprint) const {
    return options_fingerprint + "\n" + normalized_sql;
  }

  /// LRU lookup + stale eviction. Caller holds mu_. Does not count stats.
  std::optional<CachedQueryResult> LookupLocked(const std::string& key);

  mutable std::mutex mu_;
  std::condition_variable flight_cv_;
  size_t capacity_;
  std::shared_ptr<TableVersionTracker> versions_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  Stats stats_;
};

}  // namespace pdw

#endif  // PDW_PDW_RESULT_CACHE_H_
