#include "pdw/baseline.h"

#include <algorithm>

#include "common/string_util.h"

namespace pdw {

namespace {

class Parallelizer {
 public:
  Parallelizer(const Topology& topology, const ColumnEquivalence& equiv,
               const DmsCostParameters& params)
      : equiv_(equiv), cost_model_(params, topology.num_compute_nodes) {}

  Result<PlanNodePtr> Run(PlanNodePtr root) {
    // Like the PDW plan, the baseline's final Return streams per-node
    // results to the client without a DMS step, so no terminal gather.
    return Walk(std::move(root));
  }

 private:
  PlanNodePtr MakeMove(PlanNodePtr child, DmsOpKind kind, ColumnId shuffle_col,
                       DistributionProperty target) {
    auto move = std::make_unique<PlanNode>();
    move->kind = PhysOpKind::kMove;
    move->move_kind = kind;
    if (shuffle_col != kInvalidColumnId) {
      move->shuffle_columns = {shuffle_col};
    }
    move->output = child->output;
    move->cardinality = child->cardinality;
    move->row_width = child->row_width;
    move->move_cost =
        cost_model_.Cost(kind, child->cardinality, child->row_width);
    move->distribution = std::move(target);
    move->children.push_back(std::move(child));
    return move;
  }

  PlanNodePtr Resort(PlanNodePtr child, std::vector<SortItem> items) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PhysOpKind::kSort;
    sort->sort_items = std::move(items);
    sort->output = child->output;
    sort->cardinality = child->cardinality;
    sort->row_width = child->row_width;
    sort->distribution = child->distribution;
    sort->children.push_back(std::move(child));
    return sort;
  }

  double MoveCost(const PlanNode& stream, DmsOpKind kind) const {
    return cost_model_.Cost(kind, stream.cardinality, stream.row_width);
  }

  bool DistributedOnClass(const DistributionProperty& p, ColumnId rep) const {
    if (p.kind != DistributionKind::kDistributed || p.columns.size() != 1) {
      return false;
    }
    return equiv_.Find(p.columns[0]) == rep;
  }

  Result<PlanNodePtr> Walk(PlanNodePtr node) {
    for (auto& c : node->children) {
      PDW_ASSIGN_OR_RETURN(c, Walk(std::move(c)));
    }
    switch (node->kind) {
      case PhysOpKind::kTableScan: {
        const TableDef* t = node->table;
        if (t == nullptr || t->distribution.is_replicated()) {
          node->distribution = DistributionProperty::Replicated();
        } else {
          std::vector<ColumnId> cols;
          for (const std::string& dc : t->distribution.columns) {
            for (const auto& b : node->output) {
              if (EqualsIgnoreCase(b.name, dc)) cols.push_back(b.id);
            }
          }
          node->distribution = DistributionProperty::Distributed(std::move(cols));
        }
        return node;
      }
      case PhysOpKind::kEmpty:
        node->distribution = DistributionProperty::Replicated();
        return node;
      case PhysOpKind::kFilter:
      case PhysOpKind::kSort:
        node->distribution = node->children[0]->distribution;
        return node;
      case PhysOpKind::kProject: {
        DistributionProperty d = node->children[0]->distribution;
        if (d.kind == DistributionKind::kDistributed) {
          for (ColumnId col : d.columns) {
            ColumnId rep = equiv_.Find(col);
            bool visible = false;
            for (const auto& b : node->output) {
              if (equiv_.Find(b.id) == rep) visible = true;
            }
            if (!visible) {
              d = DistributionProperty::AnyDistributed();
              break;
            }
          }
        }
        node->distribution = d;
        return node;
      }
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kNestedLoopJoin:
        return FixJoin(std::move(node));
      case PhysOpKind::kUnionAll: {
        // Children must agree in kind; trim any replicated branch onto its
        // position-0 feed column when the others are distributed.
        bool any_dist = false;
        for (const auto& c : node->children) {
          if (c->distribution.kind == DistributionKind::kDistributed) {
            any_dist = true;
          }
        }
        if (any_dist) {
          for (size_t i = 0; i < node->children.size(); ++i) {
            if (!node->children[i]->distribution.is_replicated()) continue;
            ColumnId col = node->union_inputs[i].empty()
                               ? kInvalidColumnId
                               : node->union_inputs[i][0];
            if (col == kInvalidColumnId) {
              return Status::Internal("cannot repair union branch");
            }
            node->children[i] = MakeMove(
                std::move(node->children[i]), DmsOpKind::kTrimMove, col,
                DistributionProperty::Distributed({col}));
          }
          node->distribution = DistributionProperty::AnyDistributed();
        } else {
          node->distribution = DistributionProperty::Replicated();
        }
        return node;
      }
      case PhysOpKind::kHashAggregate:
        return FixAggregate(std::move(node));
      case PhysOpKind::kLimit: {
        DistributionProperty d = node->children[0]->distribution;
        if (d.kind == DistributionKind::kDistributed) {
          // Gather before limiting (no local/global split in the
          // baseline).
          bool sorted = node->children[0]->kind == PhysOpKind::kSort;
          std::vector<SortItem> sort_items = node->children[0]->sort_items;
          node->children[0] =
              MakeMove(std::move(node->children[0]), DmsOpKind::kPartitionMove,
                       kInvalidColumnId, DistributionProperty::Control());
          if (sorted) {
            node->children[0] =
                Resort(std::move(node->children[0]), std::move(sort_items));
          }
          d = DistributionProperty::Control();
        }
        node->distribution = d;
        return node;
      }
      default:
        node->distribution = node->children.empty()
                                 ? DistributionProperty::AnyDistributed()
                                 : node->children[0]->distribution;
        return node;
    }
  }

  Result<PlanNodePtr> FixJoin(PlanNodePtr node) {
    const DistributionProperty& L = node->children[0]->distribution;
    const DistributionProperty& R = node->children[1]->distribution;
    LogicalJoinType jt = node->join_type;
    bool preserving = jt == LogicalJoinType::kSemi ||
                      jt == LogicalJoinType::kAnti ||
                      jt == LogicalJoinType::kLeftOuter;

    // Already compatible?
    auto compatible = [&]() -> bool {
      if (L.is_replicated() && R.is_replicated()) return true;
      if (L.kind == DistributionKind::kDistributed && R.is_replicated()) {
        return true;
      }
      if (L.is_replicated() && R.kind == DistributionKind::kDistributed) {
        return !preserving;
      }
      if (L.kind == DistributionKind::kDistributed &&
          R.kind == DistributionKind::kDistributed) {
        if (node->equi_keys.empty()) return false;
        for (const auto& [a, b] : node->equi_keys) {
          if (DistributedOnClass(L, equiv_.Find(a)) &&
              DistributedOnClass(R, equiv_.Find(b))) {
            return true;
          }
        }
      }
      return false;
    };

    auto output_dist = [&]() -> DistributionProperty {
      const DistributionProperty& l = node->children[0]->distribution;
      const DistributionProperty& r = node->children[1]->distribution;
      if (l.kind == DistributionKind::kDistributed) return l;
      if (r.kind == DistributionKind::kDistributed) return r;
      return DistributionProperty::Replicated();
    };

    if (compatible()) {
      node->distribution = output_dist();
      return node;
    }

    // Candidate repairs, each scored by modeled move cost.
    struct Fix {
      double cost;
      int kind;  // 0=shuffle both, 1=shuffle L, 2=shuffle R,
                 // 3=broadcast L, 4=broadcast R
      ColumnId l_col = kInvalidColumnId;
      ColumnId r_col = kInvalidColumnId;
    };
    std::vector<Fix> fixes;
    const PlanNode& lhs = *node->children[0];
    const PlanNode& rhs = *node->children[1];
    if (!node->equi_keys.empty()) {
      ColumnId a = node->equi_keys[0].first;
      ColumnId b = node->equi_keys[0].second;
      bool l_dist = L.kind == DistributionKind::kDistributed;
      bool r_dist = R.kind == DistributionKind::kDistributed;
      if (l_dist && r_dist) {
        fixes.push_back(Fix{MoveCost(lhs, DmsOpKind::kShuffle) +
                                MoveCost(rhs, DmsOpKind::kShuffle),
                            0, a, b});
        if (DistributedOnClass(R, equiv_.Find(b))) {
          fixes.push_back(Fix{MoveCost(lhs, DmsOpKind::kShuffle), 1, a, b});
        }
        if (DistributedOnClass(L, equiv_.Find(a))) {
          fixes.push_back(Fix{MoveCost(rhs, DmsOpKind::kShuffle), 2, a, b});
        }
      }
      if (L.is_replicated() && r_dist && preserving) {
        // Trim the replicated preserving side onto the join key.
        fixes.push_back(Fix{MoveCost(lhs, DmsOpKind::kTrimMove) +
                                (DistributedOnClass(R, equiv_.Find(b))
                                     ? 0.0
                                     : MoveCost(rhs, DmsOpKind::kShuffle)),
                            1, a, b});
      }
    }
    if (R.kind == DistributionKind::kDistributed) {
      fixes.push_back(Fix{MoveCost(rhs, DmsOpKind::kBroadcastMove), 4});
    }
    if (L.kind == DistributionKind::kDistributed && !preserving) {
      fixes.push_back(Fix{MoveCost(lhs, DmsOpKind::kBroadcastMove), 3});
    }
    if (fixes.empty()) {
      // Last resort: broadcast the right side (valid for every join type
      // we produce, since the left stream stays in place).
      if (R.kind == DistributionKind::kDistributed) {
        fixes.push_back(Fix{MoveCost(rhs, DmsOpKind::kBroadcastMove), 4});
      } else {
        return Status::Internal("baseline cannot repair join distribution");
      }
    }
    const Fix* best = &fixes[0];
    for (const Fix& f : fixes) {
      if (f.cost < best->cost) best = &f;
    }
    switch (best->kind) {
      case 0:
        node->children[0] = MakeMove(
            std::move(node->children[0]), DmsOpKind::kShuffle, best->l_col,
            DistributionProperty::Distributed({best->l_col}));
        node->children[1] = MakeMove(
            std::move(node->children[1]), DmsOpKind::kShuffle, best->r_col,
            DistributionProperty::Distributed({best->r_col}));
        break;
      case 1: {
        DmsOpKind kind = node->children[0]->distribution.is_replicated()
                             ? DmsOpKind::kTrimMove
                             : DmsOpKind::kShuffle;
        node->children[0] = MakeMove(
            std::move(node->children[0]), kind, best->l_col,
            DistributionProperty::Distributed({best->l_col}));
        if (!DistributedOnClass(node->children[1]->distribution,
                                equiv_.Find(best->r_col))) {
          node->children[1] = MakeMove(
              std::move(node->children[1]), DmsOpKind::kShuffle, best->r_col,
              DistributionProperty::Distributed({best->r_col}));
        }
        break;
      }
      case 2:
        node->children[1] = MakeMove(
            std::move(node->children[1]), DmsOpKind::kShuffle, best->r_col,
            DistributionProperty::Distributed({best->r_col}));
        break;
      case 3:
        node->children[0] =
            MakeMove(std::move(node->children[0]), DmsOpKind::kBroadcastMove,
                     kInvalidColumnId, DistributionProperty::Replicated());
        break;
      case 4:
        node->children[1] =
            MakeMove(std::move(node->children[1]), DmsOpKind::kBroadcastMove,
                     kInvalidColumnId, DistributionProperty::Replicated());
        break;
    }
    node->distribution = output_dist();
    return node;
  }

  Result<PlanNodePtr> FixAggregate(PlanNodePtr node) {
    const DistributionProperty& C = node->children[0]->distribution;
    if (C.is_replicated() || C.is_control()) {
      node->distribution = C;
      return node;
    }
    // Local aggregation is valid when the input hash columns are all
    // group-by columns (by class).
    bool local_ok = C.is_distributed_on_known_columns();
    if (local_ok) {
      for (ColumnId col : C.columns) {
        bool in_groups = false;
        for (ColumnId g : node->group_by) {
          if (equiv_.AreEquivalent(col, g)) in_groups = true;
        }
        if (!in_groups) local_ok = false;
      }
    }
    if (local_ok) {
      node->distribution = C;
      return node;
    }
    if (!node->group_by.empty()) {
      ColumnId target = node->group_by[0];
      node->children[0] = MakeMove(
          std::move(node->children[0]), DmsOpKind::kShuffle, target,
          DistributionProperty::Distributed({target}));
      node->distribution = DistributionProperty::Distributed({target});
      return node;
    }
    // Scalar aggregate: gather everything to the control node.
    node->children[0] =
        MakeMove(std::move(node->children[0]), DmsOpKind::kPartitionMove,
                 kInvalidColumnId, DistributionProperty::Control());
    node->distribution = DistributionProperty::Control();
    return node;
  }

  const ColumnEquivalence& equiv_;
  DmsCostModel cost_model_;
};

}  // namespace

Result<PlanNodePtr> ParallelizeSerialPlan(PlanNodePtr serial_plan,
                                          const Topology& topology,
                                          const ColumnEquivalence& equivalence,
                                          const DmsCostParameters& params) {
  Parallelizer p(topology, equivalence, params);
  return p.Run(std::move(serial_plan));
}

}  // namespace pdw
