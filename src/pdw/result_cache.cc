#include "pdw/result_cache.h"

#include "obs/metrics.h"

namespace pdw {

ResultCache::ResultCache(size_t capacity,
                         std::shared_ptr<TableVersionTracker> versions)
    : capacity_(capacity),
      versions_(versions != nullptr ? std::move(versions)
                                    : std::make_shared<TableVersionTracker>()) {
}

std::optional<CachedQueryResult> ResultCache::LookupLocked(
    const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  if (!versions_->IsCurrent(it->second->result.table_versions)) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    obs::MetricsRegistry::Global().Count("result_cache.invalidation");
    obs::MetricsRegistry::Global().SetGauge("result_cache.size",
                                            static_cast<double>(lru_.size()));
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  ++it->second->hits;
  return it->second->result;
}

std::optional<CachedQueryResult> ResultCache::LookupOrJoin(
    const std::string& normalized_sql, const std::string& options_fingerprint,
    bool* coalesced) {
  if (coalesced != nullptr) *coalesced = false;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::string key = Key(normalized_sql, options_fingerprint);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (auto hit = LookupLocked(key)) {
      ++stats_.hits;
      reg.Count("result_cache.hit");
      return hit;
    }
    auto flight = inflight_.find(key);
    if (flight == inflight_.end()) {
      // No identical query in flight: the caller leads. The entry stays
      // until the leader's Publish or FailFlight resolves it.
      inflight_[key] = std::make_shared<InFlight>();
      ++stats_.misses;
      reg.Count("result_cache.miss");
      return std::nullopt;
    }
    // Identical query already executing: wait for its leader instead of
    // running redundantly. The shared_ptr keeps the flight alive across
    // the leader erasing the map entry.
    std::shared_ptr<InFlight> f = flight->second;
    flight_cv_.wait(lock, [&] { return f->done; });
    if (f->ok) {
      ++stats_.coalesced;
      reg.Count("result_cache.coalesced");
      if (coalesced != nullptr) *coalesced = true;
      return f->result;
    }
    // Leader failed: loop back — the LRU may have been filled meanwhile by
    // a different key variant, or this caller becomes the new leader.
  }
}

std::optional<CachedQueryResult> ResultCache::Lookup(
    const std::string& normalized_sql,
    const std::string& options_fingerprint) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::lock_guard<std::mutex> lock(mu_);
  auto hit = LookupLocked(Key(normalized_sql, options_fingerprint));
  if (hit.has_value()) {
    ++stats_.hits;
    reg.Count("result_cache.hit");
  } else {
    ++stats_.misses;
    reg.Count("result_cache.miss");
  }
  return hit;
}

void ResultCache::Publish(const std::string& normalized_sql,
                          const std::string& options_fingerprint,
                          CachedQueryResult result) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::string key = Key(normalized_sql, options_fingerprint);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      flight->second->result = result;  // copy: followers share these rows
      flight->second->ok = true;
      flight->second->done = true;
      inflight_.erase(flight);
    }
    if (capacity_ > 0) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        it->second->result = std::move(result);
        lru_.splice(lru_.begin(), lru_, it->second);
      } else {
        lru_.push_front(Entry{key, std::move(result), /*hits=*/0});
        index_[std::move(key)] = lru_.begin();
        if (lru_.size() > capacity_) {
          index_.erase(lru_.back().key);
          lru_.pop_back();
          ++stats_.evictions;
          reg.Count("result_cache.eviction");
        }
      }
      ++stats_.insertions;
      reg.SetGauge("result_cache.size", static_cast<double>(lru_.size()));
    }
  }
  flight_cv_.notify_all();
}

void ResultCache::FailFlight(const std::string& normalized_sql,
                             const std::string& options_fingerprint) {
  std::string key = Key(normalized_sql, options_fingerprint);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto flight = inflight_.find(key);
    if (flight == inflight_.end()) return;
    flight->second->ok = false;
    flight->second->done = true;
    inflight_.erase(flight);
  }
  flight_cv_.notify_all();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  obs::MetricsRegistry::Global().SetGauge("result_cache.size", 0);
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ResultCache::EntryInfo> ResultCache::ListEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) {
    EntryInfo info;
    // The key is fingerprint + '\n' + normalized SQL (see Key()).
    size_t nl = e.key.find('\n');
    if (nl == std::string::npos) {
      info.normalized_sql = e.key;
    } else {
      info.options_fingerprint = e.key.substr(0, nl);
      info.normalized_sql = e.key.substr(nl + 1);
    }
    info.hits = e.hits;
    info.rows = static_cast<int64_t>(e.result.rows.size());
    info.modeled_cost = e.result.modeled_cost;
    for (const auto& [table, version] : e.result.table_versions) {
      info.tables.push_back(table);
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace pdw
