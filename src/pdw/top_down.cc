#include "pdw/top_down.h"

#include <algorithm>

#include "common/string_util.h"
#include "pdw/pdw_optimizer.h"

namespace pdw {

namespace {

constexpr double kInfiniteCost = 1e300;

bool HasDistinctAggregate(const LogicalAggregate& agg) {
  for (const auto& item : agg.aggregates()) {
    if (item.distinct) return true;
  }
  return false;
}

}  // namespace

TopDownPdwOptimizer::TopDownPdwOptimizer(Memo* memo, const Topology& topology,
                                         Options options)
    : memo_(memo),
      opts_(options),
      cost_model_(options.cost_params, topology.num_compute_nodes),
      props_(DeriveInterestingProperties(*memo)) {}

std::vector<DistributionProperty> TopDownPdwOptimizer::CandidateProps(
    GroupId gid) {
  std::vector<DistributionProperty> out;
  auto add = [&](DistributionProperty p) {
    p = p.Canonical(props_.equivalence);
    for (const auto& existing : out) {
      if (existing == p) return;
    }
    out.push_back(std::move(p));
  };
  // Interesting columns visible in the output.
  auto it = props_.interesting.find(gid);
  if (it != props_.interesting.end()) {
    for (ColumnId rep : it->second) {
      for (const auto& b : memo_->group(gid).output) {
        if (props_.equivalence.Find(b.id) == rep) {
          add(DistributionProperty::Distributed({rep}));
          break;
        }
      }
    }
  }
  // Natural distributions of any base-table access in this group.
  for (const auto& e : memo_->group(gid).exprs) {
    if (e.op->kind() != LogicalOpKind::kGet) continue;
    const auto& get = static_cast<const LogicalGet&>(*e.op);
    const TableDef* t = get.table();
    if (t == nullptr || t->distribution.is_replicated()) continue;
    std::vector<ColumnId> cols;
    for (const std::string& dc : t->distribution.columns) {
      for (const auto& b : get.bindings()) {
        if (EqualsIgnoreCase(b.name, dc)) cols.push_back(b.id);
      }
    }
    if (!cols.empty()) add(DistributionProperty::Distributed(std::move(cols)));
  }
  add(DistributionProperty::AnyDistributed());
  add(DistributionProperty::Replicated());
  add(DistributionProperty::Control());
  return out;
}

double TopDownPdwOptimizer::BestAnyDistributed(GroupId gid) {
  return BestCost(gid, DistributionProperty::AnyDistributed());
}

double TopDownPdwOptimizer::MoveEdge(GroupId gid,
                                     const DistributionProperty& src,
                                     const DistributionProperty& target) const {
  const Group& g = memo_->group(gid);
  if (target.kind == DistributionKind::kDistributed &&
      !target.columns.empty()) {
    bool visible = false;
    for (const auto& b : g.output) {
      if (props_.equivalence.Find(b.id) == target.columns[0]) visible = true;
    }
    if (!visible) return kInfiniteCost;
    if (src.is_replicated()) {
      if (!opts_.enable_trim_move) return kInfiniteCost;
      return cost_model_.Cost(DmsOpKind::kTrimMove, g.cardinality,
                              g.row_width);
    }
    if (src.kind == DistributionKind::kDistributed) {
      return cost_model_.Cost(DmsOpKind::kShuffle, g.cardinality, g.row_width);
    }
    return kInfiniteCost;  // control -> distributed unsupported
  }
  if (target.is_replicated()) {
    if (src.is_control()) {
      return cost_model_.Cost(DmsOpKind::kControlNodeMove, g.cardinality,
                              g.row_width);
    }
    if (src.kind == DistributionKind::kDistributed) {
      return cost_model_.Cost(DmsOpKind::kBroadcastMove, g.cardinality,
                              g.row_width);
    }
    return kInfiniteCost;
  }
  if (target.is_control()) {
    if (src.is_replicated()) {
      return cost_model_.Cost(DmsOpKind::kRemoteCopyToSingle, g.cardinality,
                              g.row_width);
    }
    if (src.kind == DistributionKind::kDistributed) {
      return cost_model_.Cost(DmsOpKind::kPartitionMove, g.cardinality,
                              g.row_width);
    }
    return kInfiniteCost;
  }
  // target AnyDistributed: satisfied for free by any distributed source.
  if (src.kind == DistributionKind::kDistributed) return 0;
  return kInfiniteCost;
}

void TopDownPdwOptimizer::ComputeGroup(GroupId gid) {
  if (group_done_.count(gid) > 0) return;
  group_done_.insert(gid);  // children recurse via DirectCost, never to gid

  std::vector<DistributionProperty> candidates = CandidateProps(gid);
  std::map<DistributionProperty, double> val;
  for (const DistributionProperty& p : candidates) {
    val[p] = DirectCost(gid, p);
    ++stats_.states_computed;
  }
  // Relax intra-group move edges to fixpoint (<= |P| rounds).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DistributionProperty& target : candidates) {
      for (const DistributionProperty& src : candidates) {
        if (src == target) continue;
        double s_cost = val[src];
        if (s_cost >= kInfiniteCost) continue;
        double edge = MoveEdge(gid, src, target);
        if (edge >= kInfiniteCost) continue;
        if (s_cost + edge < val[target] - 1e-18) {
          val[target] = s_cost + edge;
          changed = true;
        }
      }
    }
  }
  for (const auto& [p, c] : val) table_[{gid, p}] = c;
}

double TopDownPdwOptimizer::BestCost(GroupId gid,
                                     const DistributionProperty& raw_prop) {
  DistributionProperty prop = raw_prop.Canonical(props_.equivalence);
  ++stats_.states_requested;
  ComputeGroup(gid);
  auto it = table_.find({gid, prop});
  if (it != table_.end()) return it->second;

  // Demanded property outside the candidate set (e.g. a union alignment
  // column): direct realization plus one hop from the finished candidates.
  // Nothing uses such properties as an enforcer *source*, so one pass is
  // exact; memoize for reuse.
  double best = DirectCost(gid, prop);
  ++stats_.states_computed;
  for (const DistributionProperty& src : CandidateProps(gid)) {
    double s_cost = table_.at({gid, src});
    if (s_cost >= kInfiniteCost) continue;
    double edge = MoveEdge(gid, src, prop);
    if (edge >= kInfiniteCost) continue;
    best = std::min(best, s_cost + edge);
  }
  table_[{gid, prop}] = best;
  return best;
}

double TopDownPdwOptimizer::DirectCost(GroupId gid,
                                       const DistributionProperty& prop) {
  const Group& g = memo_->group(gid);
  double n = cost_model_.num_nodes();
  bool want_any = prop.kind == DistributionKind::kDistributed &&
                  prop.columns.empty();
  bool want_dist = prop.kind == DistributionKind::kDistributed &&
                   !prop.columns.empty();

  double best = kInfiniteCost;
  for (const GroupExpr& e : g.exprs) {
    switch (e.op->kind()) {
      case LogicalOpKind::kGet: {
        const auto& get = static_cast<const LogicalGet&>(*e.op);
        const TableDef* t = get.table();
        DistributionProperty natural = DistributionProperty::Replicated();
        if (t != nullptr && !t->distribution.is_replicated()) {
          std::vector<ColumnId> cols;
          for (const std::string& dc : t->distribution.columns) {
            for (const auto& b : get.bindings()) {
              if (EqualsIgnoreCase(b.name, dc)) cols.push_back(b.id);
            }
          }
          natural = DistributionProperty::Distributed(std::move(cols));
        }
        natural = natural.Canonical(props_.equivalence);
        bool matches = natural == prop ||
                       (want_any &&
                        natural.kind == DistributionKind::kDistributed);
        if (matches) best = std::min(best, 0.0);
        break;
      }
      case LogicalOpKind::kEmpty:
        best = std::min(best, 0.0);
        break;
      case LogicalOpKind::kFilter:
      case LogicalOpKind::kSort:
      case LogicalOpKind::kProject:
        best = std::min(best, BestCost(e.children[0], prop));
        break;
      case LogicalOpKind::kJoin: {
        const auto& j = static_cast<const LogicalJoin&>(*e.op);
        GroupId lg = e.children[0];
        GroupId rg = e.children[1];
        bool inner = j.join_type() == LogicalJoinType::kInner ||
                     j.join_type() == LogicalJoinType::kCross;
        std::set<ColumnId> pair_reps;
        for (const auto& [a, b] :
             j.EquiKeys(memo_->group(lg).output, memo_->group(rg).output)) {
          pair_reps.insert(props_.equivalence.Find(a));
        }
        auto visible_in = [&](GroupId grp, ColumnId rep) {
          for (const auto& b : memo_->group(grp).output) {
            if (props_.equivalence.Find(b.id) == rep) return true;
          }
          return false;
        };
        if (prop.is_control()) {
          double c = BestCost(lg, DistributionProperty::Control());
          if (c < kInfiniteCost) {
            double r = BestCost(rg, DistributionProperty::Control());
            if (r < kInfiniteCost) best = std::min(best, c + r);
          }
        } else if (prop.is_replicated()) {
          double c = BestCost(lg, DistributionProperty::Replicated());
          if (c < kInfiniteCost) {
            double r = BestCost(rg, DistributionProperty::Replicated());
            if (r < kInfiniteCost) best = std::min(best, c + r);
          }
        } else if (want_dist) {
          ColumnId rep = prop.columns[0];
          if (visible_in(lg, rep)) {
            double l = BestCost(lg, prop);
            if (l < kInfiniteCost) {
              double r = BestCost(rg, DistributionProperty::Replicated());
              if (r < kInfiniteCost) best = std::min(best, l + r);
              if (pair_reps.count(rep) > 0 && visible_in(rg, rep)) {
                double rr = BestCost(rg, prop);
                if (rr < kInfiniteCost) best = std::min(best, l + rr);
              }
            }
          }
          if (inner && visible_in(rg, rep)) {
            double l = BestCost(lg, DistributionProperty::Replicated());
            if (l < kInfiniteCost) {
              double r = BestCost(rg, prop);
              if (r < kInfiniteCost) best = std::min(best, l + r);
            }
          }
        } else {  // any distributed
          double l_any = BestAnyDistributed(lg);
          if (l_any < kInfiniteCost) {
            double r = BestCost(rg, DistributionProperty::Replicated());
            if (r < kInfiniteCost) best = std::min(best, l_any + r);
          }
          if (inner) {
            double l = BestCost(lg, DistributionProperty::Replicated());
            if (l < kInfiniteCost) {
              double r_any = BestAnyDistributed(rg);
              if (r_any < kInfiniteCost) best = std::min(best, l + r_any);
            }
          }
          for (ColumnId rep : pair_reps) {
            DistributionProperty both =
                DistributionProperty::Distributed({rep});
            double l = BestCost(lg, both);
            if (l >= kInfiniteCost) continue;
            double r = BestCost(rg, both);
            if (r < kInfiniteCost) best = std::min(best, l + r);
          }
        }
        break;
      }
      case LogicalOpKind::kAggregate: {
        const auto& agg = static_cast<const LogicalAggregate&>(*e.op);
        GroupId child = e.children[0];
        std::set<ColumnId> group_reps;
        for (ColumnId c : agg.group_by()) {
          group_reps.insert(props_.equivalence.Find(c));
        }
        bool splittable = !HasDistinctAggregate(agg);
        double local_rows = std::min(memo_->group(child).cardinality,
                                     n * std::max(1.0, g.cardinality));
        if (prop.is_replicated() || prop.is_control()) {
          best = std::min(best, BestCost(child, prop));
          if (prop.is_control() && splittable) {
            double moved = agg.group_by().empty() ? n : local_rows;
            double c = BestAnyDistributed(child);
            if (c < kInfiniteCost) {
              best = std::min(
                  best, c + cost_model_.Cost(DmsOpKind::kPartitionMove, moved,
                                             g.row_width));
            }
          }
        } else {
          auto try_rep = [&](ColumnId rep) {
            if (group_reps.count(rep) == 0) return;
            DistributionProperty d = DistributionProperty::Distributed({rep});
            double c = BestCost(child, d);
            if (c < kInfiniteCost) best = std::min(best, c);  // single phase
            if (splittable) {
              double any = BestAnyDistributed(child);
              if (any < kInfiniteCost) {
                best = std::min(
                    any + cost_model_.Cost(DmsOpKind::kShuffle, local_rows,
                                           g.row_width),
                    best);
              }
            }
          };
          if (want_dist) {
            try_rep(prop.columns[0]);
          } else {
            for (ColumnId rep : group_reps) try_rep(rep);
          }
        }
        best = std::min(best, PreaggCost(gid, e, prop));
        break;
      }
      case LogicalOpKind::kLimit: {
        const auto& limit = static_cast<const LogicalLimit&>(*e.op);
        GroupId child = e.children[0];
        if (prop.is_replicated()) {
          best = std::min(best, BestCost(child, prop));
        } else if (prop.is_control()) {
          best = std::min(best, BestCost(child, prop));
          double moved = std::min(memo_->group(child).cardinality,
                                  static_cast<double>(limit.limit()) * n);
          double c = BestAnyDistributed(child);
          if (c < kInfiniteCost) {
            best = std::min(best,
                            c + cost_model_.Cost(DmsOpKind::kPartitionMove,
                                                 moved, g.row_width));
          }
        }
        break;
      }
      case LogicalOpKind::kUnionAll: {
        const auto& u = static_cast<const LogicalUnionAll&>(*e.op);
        auto sum_demand = [&](auto&& per_child) -> double {
          double total = 0;
          for (size_t i = 0; i < e.children.size(); ++i) {
            double c = per_child(i);
            if (c >= kInfiniteCost) return kInfiniteCost;
            total += c;
          }
          return total;
        };
        if (prop.is_replicated() || prop.is_control()) {
          best = std::min(best, sum_demand([&](size_t i) {
            return BestCost(e.children[i], prop);
          }));
        } else if (want_any) {
          best = std::min(best, sum_demand([&](size_t i) {
            return BestAnyDistributed(e.children[i]);
          }));
        } else {
          // Aligned (collocated) union on an output position.
          for (size_t pos = 0; pos < u.outputs().size(); ++pos) {
            if (props_.equivalence.Find(u.outputs()[pos].id) !=
                prop.columns[0]) {
              continue;
            }
            best = std::min(best, sum_demand([&](size_t i) {
              return BestCost(e.children[i],
                              DistributionProperty::Distributed(
                                  {u.child_columns()[i][pos]}));
            }));
          }
        }
        break;
      }
    }
  }
  return best;
}

double TopDownPdwOptimizer::PreaggCost(GroupId /*gid*/, const GroupExpr& e,
                                       const DistributionProperty& prop) {
  if (!ResolvePreaggEnabled(opts_.enable_preagg)) return kInfiniteCost;
  const auto& agg = static_cast<const LogicalAggregate&>(*e.op);
  // Same duplicate-sensitivity gates as the bottom-up enumerator: DISTINCT
  // aggregates are not decomposable and scalar aggregates keep the
  // at-the-aggregate two-phase path only.
  if (HasDistinctAggregate(agg) || agg.group_by().empty()) return kInfiniteCost;

  GroupId child = e.children[0];
  const Group& cg = memo_->group(child);
  double n = cost_model_.num_nodes();
  bool want_any =
      prop.kind == DistributionKind::kDistributed && prop.columns.empty();

  std::set<ColumnId> group_reps;
  for (ColumnId c : agg.group_by()) {
    group_reps.insert(props_.equivalence.Find(c));
  }

  double best = kInfiniteCost;
  // Accept an alternative whose global aggregate lands on `final_prop` when
  // it satisfies the demanded property.
  auto match = [&](const DistributionProperty& final_prop, double cost) {
    DistributionProperty f = final_prop.Canonical(props_.equivalence);
    if (f == prop || (want_any && f.kind == DistributionKind::kDistributed)) {
      best = std::min(best, cost);
    }
  };

  for (const GroupExpr& jx : cg.exprs) {
    if (jx.op->kind() != LogicalOpKind::kJoin) continue;
    const auto& j = static_cast<const LogicalJoin&>(*jx.op);
    if (j.join_type() != LogicalJoinType::kInner) continue;
    GroupId lg = jx.children[0];
    GroupId rg = jx.children[1];
    auto keys = j.EquiKeys(memo_->group(lg).output, memo_->group(rg).output);
    if (keys.empty() || keys.size() != j.conditions().size()) continue;

    std::set<ColumnId> pair_reps;
    for (const auto& [a, b] : keys) {
      pair_reps.insert(props_.equivalence.Find(a));
    }

    for (int side = 0; side < 2; ++side) {
      GroupId sg = side == 0 ? lg : rg;
      GroupId og = side == 0 ? rg : lg;
      const Group& sgr = memo_->group(sg);
      const Group& ogr = memo_->group(og);

      bool args_on_side = true;
      for (const auto& item : agg.aggregates()) {
        if (item.arg == nullptr) continue;  // COUNT(*)
        std::set<ColumnId> cols;
        CollectColumns(item.arg, &cols);
        for (ColumnId c : cols) {
          if (FindBinding(sgr.output, c) < 0) args_on_side = false;
        }
      }
      if (!args_on_side) continue;

      // K = {group-by ∩ side} ∪ {side's equi keys}, in enumeration order.
      std::vector<ColumnId> partial_keys;
      auto add_key = [&partial_keys](ColumnId c) {
        for (ColumnId k : partial_keys) {
          if (k == c) return;
        }
        partial_keys.push_back(c);
      };
      for (ColumnId gc : agg.group_by()) {
        if (FindBinding(sgr.output, gc) >= 0) add_key(gc);
      }
      for (const auto& [a, b] : keys) add_key(side == 0 ? a : b);
      std::set<ColumnId> key_reps;
      for (ColumnId k : partial_keys) {
        key_reps.insert(props_.equivalence.Find(k));
      }

      double d = memo_->estimator().GroupCardinality(partial_keys,
                                                     sgr.cardinality);
      double partial_rows = std::min(sgr.cardinality, n * std::max(1.0, d));
      std::vector<ColumnBinding> partial_out;
      for (ColumnId k : partial_keys) {
        int pos = FindBinding(sgr.output, k);
        partial_out.push_back(sgr.output[static_cast<size_t>(pos)]);
      }
      for (const auto& item : agg.aggregates()) {
        partial_out.push_back(item.output);
      }
      double partial_width = memo_->estimator().RowWidth(partial_out);
      double join_rows = std::max(
          1.0, cg.cardinality * std::min(1.0, partial_rows /
                                                  std::max(1.0,
                                                           sgr.cardinality)));
      double join_width = partial_width + ogr.row_width;
      double side_bytes = sgr.cardinality * std::max(1.0, sgr.row_width);

      // Source properties of the pushed side. The bottom-up enumerator
      // walks the side's whole option frontier; every frontier property on
      // non-K classes costs downstream exactly like AnyDistributed and is
      // dominated by it, so the candidate set (interesting + natural + any
      // + replicated) covers the optimum.
      for (const DistributionProperty& sp : CandidateProps(sg)) {
        if (sp.is_control()) continue;
        double s_cost = BestCost(sg, sp);
        if (s_cost >= kInfiniteCost) continue;
        double cpu = cost_model_.params().lambda_preagg *
                     (sp.is_replicated() ? side_bytes : side_bytes / n);

        DistributionProperty pdist = sp;
        if (pdist.kind == DistributionKind::kDistributed) {
          for (ColumnId rep : pdist.columns) {
            if (key_reps.count(props_.equivalence.Find(rep)) == 0) {
              pdist = DistributionProperty::AnyDistributed();
              break;
            }
          }
        }

        struct PartialMove {
          bool has = false;
          DmsOpKind kind = DmsOpKind::kShuffle;
          DistributionProperty dist;
        };
        std::vector<PartialMove> pmoves;
        pmoves.push_back(PartialMove{false, DmsOpKind::kShuffle, pdist});
        if (pdist.kind == DistributionKind::kDistributed) {
          for (ColumnId k : partial_keys) {
            pmoves.push_back(PartialMove{
                true, DmsOpKind::kShuffle,
                DistributionProperty::Distributed({k})});
          }
          pmoves.push_back(PartialMove{true, DmsOpKind::kBroadcastMove,
                                       DistributionProperty::Replicated()});
        }

        for (const PartialMove& pm : pmoves) {
          double pmove_cost =
              pm.has ? cost_model_.Cost(pm.kind, partial_rows, partial_width)
                     : 0;
          DistributionProperty P = pm.dist.Canonical(props_.equivalence);

          for (const DistributionProperty& op : CandidateProps(og)) {
            if (op.is_control()) continue;
            double o_cost = BestCost(og, op);
            if (o_cost >= kInfiniteCost) continue;

            const DistributionProperty& L = side == 0 ? P : op;
            const DistributionProperty& R = side == 0 ? op : P;
            bool l_dist = L.kind == DistributionKind::kDistributed;
            bool r_dist = R.kind == DistributionKind::kDistributed;
            DistributionProperty jdist;
            bool valid = false;
            if (L.is_replicated() && R.is_replicated()) {
              jdist = DistributionProperty::Replicated();
              valid = true;
            } else if (l_dist && R.is_replicated()) {
              jdist = L;
              valid = true;
            } else if (L.is_replicated() && r_dist) {
              jdist = R;
              valid = true;  // inner join: replicated side streams in place
            } else if (l_dist && r_dist && !L.columns.empty() &&
                       L.columns == R.columns) {
              bool all_equated = true;
              for (ColumnId rep : L.columns) {
                if (pair_reps.count(rep) == 0) all_equated = false;
              }
              if (all_equated) {
                jdist = L;
                valid = true;
              }
            }
            if (!valid) continue;

            double base_cost = s_cost + o_cost + cpu + pmove_cost;
            if (jdist.is_replicated()) {
              match(jdist, base_cost);
              continue;
            }
            if (jdist.is_distributed_on_known_columns()) {
              bool subset = true;
              for (ColumnId rep : jdist.columns) {
                if (group_reps.count(rep) == 0) subset = false;
              }
              if (subset) match(jdist, base_cost);
            }
            for (ColumnId gcol : agg.group_by()) {
              match(DistributionProperty::Distributed({gcol}),
                    base_cost + cost_model_.Cost(DmsOpKind::kShuffle,
                                                 join_rows, join_width));
            }
            match(DistributionProperty::Control(),
                  base_cost + cost_model_.Cost(DmsOpKind::kPartitionMove,
                                               join_rows, join_width));
          }
        }
      }
    }
  }
  return best;
}

Result<double> TopDownPdwOptimizer::OptimalCost() {
  if (memo_->root() == kInvalidGroupId) {
    return Status::Internal("memo has no root group");
  }
  GroupId root = memo_->root();
  double best = std::min({BestAnyDistributed(root),
                          BestCost(root, DistributionProperty::Replicated()),
                          BestCost(root, DistributionProperty::Control())});
  if (best >= kInfiniteCost) {
    return Status::Internal("top-down search found no valid plan");
  }
  return best;
}

}  // namespace pdw
