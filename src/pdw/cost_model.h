#ifndef PDW_PDW_COST_MODEL_H_
#define PDW_PDW_COST_MODEL_H_

#include <string>

#include "plan/distribution.h"

namespace pdw {

/// Per-byte cost constants (the λ of §3.3.3), one per DMS operator
/// component. The paper's "cost calibration" fits these against targeted
/// performance tests; `CalibrateCostModel` in src/dms does the same
/// against the DMS simulator. Units: seconds per byte (scaled arbitrarily;
/// only ratios matter for plan choice).
///
/// Defaults are fitted to the streaming columnar wire codec
/// (CalibrateCostModel with DmsCodec::kColumnar, see
/// bench_fig5_dms_cost): pack/route is bulk memcpy work so the reader
/// constants dropped well below the old per-Datum row-codec fits, the
/// hash overhead shrank to ~1.2x of a direct read (vectorized routing),
/// and the receive side (unpack + row materialization, then temp-table
/// bulk copy) now dominates — matching the paper's observation that
/// materializing to temp tables is the expensive end of a move.
struct DmsCostParameters {
  /// Reader: pull tuples from the local SQL query and pack buffers. The
  /// paper found hashing moves (Shuffle, Trim) need their own constant.
  double lambda_reader_direct = 2.5e-9;
  double lambda_reader_hash = 3.0e-9;
  /// Send buffers over the network.
  double lambda_network = 8.0e-10;
  /// Unpack buffers and prepare them for insertion.
  double lambda_writer = 5.0e-9;
  /// Bulk-copy insert into the SQL Server temp table — typically the most
  /// expensive component ("materializing data to temp tables" dominates).
  double lambda_bulkcopy = 1.0e-8;
  /// CPU charge per input byte of a pushed-down partial aggregate (the
  /// pre-aggregation enforcer of PR 9). The DMS-only objective is blind to
  /// local compute, but a partial aggregate that barely shrinks its input
  /// (near-unique grouping keys) must lose to the plain plan on cost —
  /// this term is what makes the optimizer *decline* pushdown when the
  /// distinct-group estimate approaches the input cardinality. Fitted
  /// below the movement λs: scanning+hashing a byte locally is cheaper
  /// than shipping it.
  double lambda_preagg = 1.5e-9;
};

/// Response-time cost model for the seven DMS operations (§3.3.2-3.3.3),
/// under the paper's assumptions: serial DSQL steps, no pipelining,
/// isolation, homogeneous nodes, uniform data distribution. With uniformity
/// only one node per side needs costing:
///   C_source = max(C_reader, C_network)
///   C_target = max(C_writer, C_blkcpy)
///   C_DMS    = max(C_source, C_target)
/// with each component C_X = B_X * λ_X, B_X = Y*w/N for distributed
/// streams and Y*w for replicated/single-node streams.
class DmsCostModel {
 public:
  DmsCostModel(const DmsCostParameters& params, int num_nodes)
      : params_(params), nodes_(num_nodes < 1 ? 1 : num_nodes) {}

  /// Per-component byte counts and costs for one DMS operation moving a
  /// stream of `rows` global rows of `width` bytes.
  struct Breakdown {
    double bytes_reader = 0;
    double bytes_network = 0;
    double bytes_writer = 0;
    double bytes_bulkcopy = 0;
    double c_reader = 0;
    double c_network = 0;
    double c_writer = 0;
    double c_bulkcopy = 0;
    double c_source = 0;
    double c_target = 0;
    double total = 0;

    std::string ToString() const;
  };

  Breakdown CostBreakdown(DmsOpKind kind, double rows, double width) const;

  /// Total modeled response time of the operation.
  double Cost(DmsOpKind kind, double rows, double width) const {
    return CostBreakdown(kind, rows, width).total;
  }

  int num_nodes() const { return nodes_; }
  const DmsCostParameters& params() const { return params_; }

 private:
  DmsCostParameters params_;
  int nodes_;
};

}  // namespace pdw

#endif  // PDW_PDW_COST_MODEL_H_
