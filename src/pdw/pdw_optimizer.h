#ifndef PDW_PDW_PDW_OPTIMIZER_H_
#define PDW_PDW_PDW_OPTIMIZER_H_

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "optimizer/memo.h"
#include "pdw/cost_model.h"
#include "pdw/interesting_props.h"
#include "plan/plan_node.h"

namespace pdw {

/// How a distributed aggregation or limit option is realized at plan-build
/// time (the Q20 LocalGB/GlobalGB pattern).
enum class DistributedStrategy {
  kPlain,              ///< Operator applied as-is on the chosen inputs.
  kLocalGlobalShuffle, ///< Local partial agg, shuffle on a group-by column,
                       ///< global agg.
  kLocalGlobalGather,  ///< Local partial agg, gather to control, global agg.
  kLocalLimitGather,   ///< Local top-N, gather, re-sort + global top-N.
  kPreaggJoin,         ///< Partial agg pushed below a join of the input
                       ///< group; global agg above the join (PR 9).
};

/// Everything BuildPlan needs to reconstruct one pushed-down partial
/// aggregation alternative: the chosen join expression of the aggregate's
/// input group, which side receives the partial aggregate, the partial
/// grouping key {group-by ∩ side} ∪ {side's equi-join keys}, and the
/// optional DMS moves below (partial stream) and above (join output) it.
/// Held by shared_ptr on PdwOption so options stay cheap to copy.
struct PreaggRecipe {
  int join_expr = 0;    ///< Expr index within the aggregate's input group.
  int side = 0;         ///< 0 = left join input pushed, 1 = right.
  int side_option = 0;  ///< Option index of the pushed side's group.
  int other_option = 0; ///< Option index of the other side's group.
  std::vector<ColumnId> partial_keys;  ///< K, actual side-output columns.
  double partial_rows = 0;   ///< Appliance-wide partial output rows.
  double partial_width = 0;  ///< Row width of the partial stream.
  DistributionProperty partial_dist;  ///< Partial output, before any move.
  bool has_partial_move = false;      ///< Move partials before the join.
  DmsOpKind partial_move_kind = DmsOpKind::kShuffle;
  ColumnId partial_shuffle_col = kInvalidColumnId;
  double partial_move_cost = 0;
  DistributionProperty partial_moved_dist;  ///< Partial side at the join.
  double join_rows = 0;               ///< Join output estimate (reduced).
  double join_width = 0;
  DistributionProperty join_dist;     ///< Join output property.
  bool has_global_move = false;       ///< Move join output before global agg.
  DmsOpKind global_move_kind = DmsOpKind::kShuffle;
  ColumnId global_shuffle_col = kInvalidColumnId;
  double global_move_cost = 0;
  DistributionProperty global_dist;   ///< Property the global agg runs under.
};

/// One entry in a group's option table: a way of producing the group's
/// output with a concrete distribution property and a cumulative cost.
struct PdwOption {
  DistributionProperty prop;         ///< Canonicalized distribution.
  double cost = 0;                   ///< Cumulative modeled cost.
  bool is_enforcer = false;          ///< Data-movement option (step 07).
  DmsOpKind move_kind = DmsOpKind::kShuffle;
  int source_option = -1;            ///< Enforcer input (index in same group).
  double move_cost = 0;              ///< Modeled cost of the move itself.
  int expr_index = -1;               ///< Group expression (non-enforcer).
  std::vector<int> child_options;    ///< Chosen option per child group.
  DistributedStrategy strategy = DistributedStrategy::kPlain;
  ColumnId shuffle_column = kInvalidColumnId;  ///< Actual hash column.
  double local_rows = 0;             ///< Partial-agg output rows (two-phase).
  /// Pushed-down partial aggregation recipe (kPreaggJoin only).
  std::shared_ptr<const PreaggRecipe> preagg;
};

/// Options and statistics of the PDW optimizer (Fig. 4).
struct PdwOptimizerOptions {
  DmsCostParameters cost_params;
  /// User hint (§3.1 query surface extension): FORCE_BROADCAST removes
  /// shuffle enforcers, FORCE_SHUFFLE removes broadcast enforcers.
  sql::DistributionHint hint = sql::DistributionHint::kNone;
  /// Step 06.ii pruning: keep only the best option overall and per
  /// interesting property. Disabling it is the FIG4 ablation.
  bool prune = true;
  /// Cap on options per group when pruning is disabled (safety valve).
  size_t max_options_per_group = 4096;
  /// Consider TRIM moves for replicated->distributed conversions.
  bool enable_trim_move = true;
  /// Extended (ablation) model: add relational operator costs on top of
  /// the paper's DMS-only objective.
  bool relational_costs = false;
  /// Per-byte weight of relational work in the extended model.
  double relational_lambda = 0.4e-8;
  /// Fans the per-group enumeration out level-by-level over the memo DAG
  /// (semantics as MemoOptions::opt_threads; -1 = PDW_OPT_THREADS env).
  /// The option tables — and therefore the plan — are identical at every
  /// setting: a group's table only depends on its children's completed
  /// tables, and within a group the expression order is fixed.
  int opt_threads = -1;
  /// Partial-aggregate pushdown below joins (PR 9): -1 = PDW_OPT_PREAGG
  /// env (default on), 0 = off, 1 = on. Resolved before plan-cache
  /// fingerprinting, like the beam width.
  int enable_preagg = -1;
};

/// Effective pushdown switch: `enable_preagg` when >= 0, else the
/// PDW_OPT_PREAGG environment variable ("0"/"off" disables), else on.
bool ResolvePreaggEnabled(int enable_preagg);

/// Result of PDW optimization: the parallel plan (with Move nodes) plus
/// search statistics used by the benches.
struct PdwPlanResult {
  PlanNodePtr plan;
  double cost = 0;
  size_t options_considered = 0;
  size_t options_kept = 0;
  size_t options_pruned = 0;      ///< considered - kept (step 06.ii effect).
  size_t enforcers_inserted = 0;  ///< Data-movement options kept (step 07).
  size_t groups_optimized = 0;
  /// Pre-aggregation pushdown search statistics (PR 9).
  size_t preagg_considered = 0;  ///< Pushdown options generated.
  size_t preagg_kept = 0;        ///< Pushdown options surviving pruning.
  bool preagg_chosen = false;    ///< Final plan contains a pushed partial agg.
};

/// The PDW parallel optimizer (paper §3, Fig. 4): bottom-up enumeration
/// over the imported memo, inserting data-movement enforcers, pruning per
/// interesting property, and extracting the cheapest plan that delivers
/// results to the control node.
class PdwOptimizer {
 public:
  PdwOptimizer(Memo* memo, const Topology& topology,
               PdwOptimizerOptions options = {});

  Result<PdwPlanResult> Optimize();

  /// Option table of a group (valid after Optimize); test/bench hook for
  /// the per-group bound of Fig. 4 step 06.ii.
  const std::vector<PdwOption>& group_options(GroupId gid) const {
    return options_.at(gid);
  }
  const InterestingProperties& interesting() const { return props_; }
  const DmsCostModel& cost_model() const { return cost_model_; }

 private:
  void OptimizeGroup(GroupId gid);
  void EnumerateExpr(GroupId gid, int expr_index);
  void EnumerateJoin(GroupId gid, int expr_index);
  void EnumerateAggregate(GroupId gid, int expr_index);
  /// Pushdown variants for one aggregate expr: for every join expression
  /// of the input group and every join side, a local partial aggregate on
  /// that side keyed on {group-by ∩ side} ∪ {side's equi-join keys}, with
  /// the global phase left above the join (PR 9).
  void EnumeratePreagg(GroupId gid, int expr_index);
  void EnumerateLimit(GroupId gid, int expr_index);
  void EnumerateUnionAll(GroupId gid, int expr_index);
  void EnforcerStep(GroupId gid);

  /// Indexes of the cheapest option per canonical distribution property
  /// (first index wins ties — deterministic). With pruning on this is the
  /// whole table; with pruning off it collapses the ablation's full table
  /// so the pushdown sweep stays polynomial and picks the same winners.
  std::vector<int> FrontierOptions(GroupId gid) const;

  /// Inserts a candidate option, applying cost-based pruning per canonical
  /// property. Returns true if kept.
  bool Consider(GroupId gid, PdwOption option);

  /// Relational cost of one operator instance under the extended model
  /// (0 in the paper's DMS-only model).
  double RelationalCost(const Group& g, const GroupExpr& e,
                        bool distributed) const;

  /// Actual column of `group`'s output belonging to class `rep`.
  ColumnId MemberInOutput(GroupId gid, ColumnId rep) const;

  Result<PlanNodePtr> BuildPlan(GroupId gid, int option_index) const;

  Memo* memo_;
  Topology topology_;
  PdwOptimizerOptions opts_;
  DmsCostModel cost_model_;
  InterestingProperties props_;
  std::map<GroupId, std::vector<PdwOption>> options_;
  std::set<GroupId> done_;
  std::set<GroupId> in_progress_;
  // Atomic: bumped from concurrent per-group tasks of the level sweep.
  std::atomic<size_t> considered_{0};
  std::atomic<size_t> enforcers_kept_{0};
  std::atomic<size_t> preagg_considered_{0};
  std::atomic<size_t> preagg_kept_{0};
};

}  // namespace pdw

#endif  // PDW_PDW_PDW_OPTIMIZER_H_
