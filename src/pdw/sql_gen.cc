#include "pdw/sql_gen.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace pdw {

namespace {

/// Name resolution for expression rendering: column id -> "alias.name".
using SqlScope = std::map<ColumnId, std::string>;

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += '\'';  // double the quote
    out += c;
  }
  out += "'";
  return out;
}

std::string RenderDatum(const Datum& d) {
  switch (d.type()) {
    case TypeId::kInvalid:
      return "NULL";
    case TypeId::kBool:
      return d.bool_value() ? "TRUE" : "FALSE";
    case TypeId::kInt:
      return std::to_string(d.int_value());
    case TypeId::kDouble: {
      std::string s = StringFormat("%.17g", d.double_value());
      // Guarantee the literal re-parses as a DOUBLE, not an INT.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case TypeId::kVarchar:
      return QuoteString(d.string_value());
    case TypeId::kDate:
      return "DATE '" + FormatDate(d.date_value()) + "'";
  }
  return "NULL";
}

Result<std::string> RenderExpr(const ScalarExpr& e, const SqlScope& scope) {
  switch (e.kind()) {
    case ScalarKind::kColumn: {
      const auto& c = static_cast<const ColumnExpr&>(e);
      auto it = scope.find(c.id());
      if (it == scope.end()) {
        return Status::Internal("SQL generation: column " + c.ToString() +
                                " not in scope");
      }
      return it->second;
    }
    case ScalarKind::kLiteral:
      return RenderDatum(static_cast<const LiteralExprB&>(e).value());
    case ScalarKind::kBinary: {
      const auto& b = static_cast<const BinaryExprB&>(e);
      PDW_ASSIGN_OR_RETURN(std::string l, RenderExpr(*b.left(), scope));
      PDW_ASSIGN_OR_RETURN(std::string r, RenderExpr(*b.right(), scope));
      return "(" + l + " " + sql::BinaryOpToString(b.op()) + " " + r + ")";
    }
    case ScalarKind::kUnary: {
      const auto& u = static_cast<const UnaryExprB&>(e);
      PDW_ASSIGN_OR_RETURN(std::string v, RenderExpr(*u.operand(), scope));
      return u.op() == sql::UnaryOp::kNot ? "(NOT " + v + ")" : "(-" + v + ")";
    }
    case ScalarKind::kIsNull: {
      const auto& n = static_cast<const IsNullExprB&>(e);
      PDW_ASSIGN_OR_RETURN(std::string v, RenderExpr(*n.operand(), scope));
      return "(" + v + (n.negated() ? " IS NOT NULL)" : " IS NULL)");
    }
    case ScalarKind::kCase: {
      const auto& c = static_cast<const CaseExprB&>(e);
      std::string out = "CASE";
      for (const auto& [w, t] : c.whens()) {
        PDW_ASSIGN_OR_RETURN(std::string ws, RenderExpr(*w, scope));
        PDW_ASSIGN_OR_RETURN(std::string ts, RenderExpr(*t, scope));
        out += " WHEN " + ws + " THEN " + ts;
      }
      if (c.else_expr()) {
        PDW_ASSIGN_OR_RETURN(std::string es, RenderExpr(*c.else_expr(), scope));
        out += " ELSE " + es;
      }
      return out + " END";
    }
    case ScalarKind::kCast: {
      const auto& c = static_cast<const CastExprB&>(e);
      PDW_ASSIGN_OR_RETURN(std::string v, RenderExpr(*c.operand(), scope));
      return std::string("CAST(") + v + " AS " + TypeIdToString(c.type()) + ")";
    }
    case ScalarKind::kFunction: {
      const auto& f = static_cast<const FunctionExprB&>(e);
      std::string out = f.name() + "(";
      for (size_t i = 0; i < f.args().size(); ++i) {
        if (i > 0) out += ", ";
        // DATEADD's date-part argument must render as a bare word.
        if (f.name() == "DATEADD" && i == 0 &&
            f.args()[0]->kind() == ScalarKind::kLiteral) {
          out += static_cast<const LiteralExprB&>(*f.args()[0])
                     .value()
                     .string_value();
          continue;
        }
        PDW_ASSIGN_OR_RETURN(std::string a, RenderExpr(*f.args()[i], scope));
        out += a;
      }
      return out + ")";
    }
  }
  return Status::Internal("unreachable expr kind in SQL generation");
}

/// Recursive SQL generator. Each operator level becomes a derived table
/// with a T<depth>_<seq> alias, paper-style.
class Generator {
 public:
  explicit Generator(std::string db_prefix) : db_(std::move(db_prefix)) {}

  /// A rendered relation: a FROM-clause fragment plus the mapping from the
  /// node's output column ids to names exposed by the fragment.
  struct Rel {
    std::string from_text;  ///< "... AS Tk_i" fragment.
    std::string alias;
    std::map<ColumnId, std::string> columns;
  };

  std::string NewAlias(int depth) {
    return StringFormat("T%d_%d", depth, ++seq_);
  }

  /// Emits unique column names for a node's output bindings. Names that
  /// would lex as keywords (a binder-generated "sum"/"count" alias, say)
  /// are mangled so the statement re-parses.
  static std::vector<std::string> UniqueNames(
      const std::vector<ColumnBinding>& output) {
    std::vector<std::string> names;
    std::set<std::string> used;
    for (const auto& b : output) {
      std::string name = ToLower(b.name);
      if (name.empty()) name = "col";
      if (sql::IsReservedKeyword(name)) name = "c_" + name;
      if (!used.insert(name).second) {
        name += "_" + std::to_string(b.id);
        used.insert(name);
      }
      names.push_back(name);
    }
    return names;
  }

  SqlScope ScopeOf(const Rel& rel) const {
    SqlScope scope;
    for (const auto& [id, name] : rel.columns) {
      scope[id] = rel.alias + "." + name;
    }
    return scope;
  }

  static SqlScope MergeScopes(const SqlScope& a, const SqlScope& b) {
    SqlScope out = a;
    out.insert(b.begin(), b.end());
    return out;
  }

  /// Renders `node` as a FROM-able relation.
  Result<Rel> RenderRel(const PlanNode& node, int depth) {
    if (node.kind == PhysOpKind::kTableScan ||
        node.kind == PhysOpKind::kTempScan) {
      Rel rel;
      rel.alias = NewAlias(depth);
      std::string qualifier = node.kind == PhysOpKind::kTempScan
                                  ? "[tempdb].[dbo]."
                                  : "[" + db_ + "].[dbo].";
      rel.from_text = qualifier + "[" + node.table_name + "] AS " + rel.alias;
      std::vector<std::string> names = UniqueNames(node.output);
      for (size_t i = 0; i < node.output.size(); ++i) {
        rel.columns[node.output[i].id] = names[i];
      }
      return rel;
    }
    PDW_ASSIGN_OR_RETURN(GeneratedSql sub, RenderSelect(node, depth + 1));
    Rel rel;
    rel.alias = NewAlias(depth);
    rel.from_text = "(" + sub.sql + ") AS " + rel.alias;
    for (size_t i = 0; i < node.output.size(); ++i) {
      rel.columns[node.output[i].id] = sub.column_names[i];
    }
    return rel;
  }

  /// Renders `node` as a full SELECT statement.
  Result<GeneratedSql> RenderSelect(const PlanNode& node, int depth) {
    switch (node.kind) {
      case PhysOpKind::kTableScan:
      case PhysOpKind::kTempScan: {
        PDW_ASSIGN_OR_RETURN(Rel rel, RenderRel(node, depth));
        return SelectAll(node.output, rel, /*where=*/"");
      }
      case PhysOpKind::kEmpty: {
        // A contradiction subtree: typed NULLs selected from the built-in
        // zero-row pdw_empty table every engine provides.
        std::vector<std::string> names = UniqueNames(node.output);
        std::string sql = "SELECT ";
        for (size_t i = 0; i < node.output.size(); ++i) {
          if (i > 0) sql += ", ";
          TypeId t = node.output[i].type == TypeId::kInvalid
                         ? TypeId::kInt
                         : node.output[i].type;
          sql += std::string("CAST(NULL AS ") + TypeIdToString(t) + ") AS " +
                 names[i];
        }
        sql += " FROM [tempdb].[dbo].[pdw_empty] AS " + NewAlias(depth);
        return GeneratedSql{sql, names};
      }
      case PhysOpKind::kFilter: {
        const PlanNode& child = *node.children[0];
        PDW_ASSIGN_OR_RETURN(Rel rel, RenderRel(child, depth));
        SqlScope scope = ScopeOf(rel);
        std::vector<std::string> conds;
        for (const auto& c : node.conjuncts) {
          PDW_ASSIGN_OR_RETURN(std::string s, RenderExpr(*c, scope));
          conds.push_back(s);
        }
        return SelectAll(node.output, rel, Join(conds, " AND "));
      }
      case PhysOpKind::kProject: {
        const PlanNode& child = *node.children[0];
        PDW_ASSIGN_OR_RETURN(Rel rel, RenderRel(child, depth));
        SqlScope scope = ScopeOf(rel);
        std::vector<std::string> names = UniqueNames(node.output);
        std::string sql = "SELECT ";
        for (size_t i = 0; i < node.items.size(); ++i) {
          if (i > 0) sql += ", ";
          PDW_ASSIGN_OR_RETURN(std::string e,
                               RenderExpr(*node.items[i].expr, scope));
          sql += e + " AS " + names[i];
        }
        sql += " FROM " + rel.from_text;
        return GeneratedSql{sql, names};
      }
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kNestedLoopJoin:
        return RenderJoin(node, depth);
      case PhysOpKind::kHashAggregate:
        return RenderAggregate(node, depth);
      case PhysOpKind::kSort: {
        // Per-node ordering is immaterial mid-plan (DSQL materializes into
        // unordered temp tables); ORDER BY is emitted by the Return step.
        return RenderSelect(*node.children[0], depth);
      }
      case PhysOpKind::kLimit: {
        // TOP n, with ORDER BY folded in when the child is a Sort.
        const PlanNode* child = node.children[0].get();
        std::vector<SortItem> sort_items;
        if (child->kind == PhysOpKind::kSort) {
          sort_items = child->sort_items;
          child = child->children[0].get();
        }
        PDW_ASSIGN_OR_RETURN(Rel rel, RenderRel(*child, depth));
        PDW_ASSIGN_OR_RETURN(
            GeneratedSql out,
            SelectAll(node.output, rel, /*where=*/""));
        out.sql = "SELECT TOP " + std::to_string(node.limit) +
                  out.sql.substr(6);  // splice after "SELECT"
        if (!sort_items.empty()) {
          PDW_ASSIGN_OR_RETURN(std::string ob,
                               OrderByClause(sort_items, ScopeOf(rel)));
          out.sql += ob;
        }
        return out;
      }
      case PhysOpKind::kUnionAll: {
        std::vector<std::string> names = UniqueNames(node.output);
        std::string sql;
        for (size_t i = 0; i < node.children.size(); ++i) {
          PDW_ASSIGN_OR_RETURN(Rel rel, RenderRel(*node.children[i], depth));
          if (i > 0) sql += " UNION ALL ";
          sql += "SELECT ";
          for (size_t p = 0; p < node.union_inputs[i].size(); ++p) {
            if (p > 0) sql += ", ";
            auto it = rel.columns.find(node.union_inputs[i][p]);
            if (it == rel.columns.end()) {
              return Status::Internal("union input column missing");
            }
            sql += rel.alias + "." + it->second + " AS " + names[p];
          }
          sql += " FROM " + rel.from_text;
        }
        return GeneratedSql{sql, names};
      }
      case PhysOpKind::kMove:
        return Status::Internal(
            "SQL generation reached a Move node; DSQL splitting should have "
            "replaced it with a TempScan");
    }
    return Status::Internal("unreachable plan kind in SQL generation");
  }

  Result<std::string> OrderByClause(const std::vector<SortItem>& items,
                                    const SqlScope& scope) {
    std::string out = " ORDER BY ";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      auto it = scope.find(items[i].column);
      if (it == scope.end()) {
        return Status::Internal("ORDER BY column not in scope");
      }
      out += it->second;
      out += items[i].ascending ? " ASC" : " DESC";
    }
    return out;
  }

 private:
  /// "SELECT a.x AS x, ... FROM rel [WHERE ...]" projecting `output`.
  Result<GeneratedSql> SelectAll(const std::vector<ColumnBinding>& output,
                                 const Rel& rel, const std::string& where) {
    std::vector<std::string> names = UniqueNames(output);
    std::string sql = "SELECT ";
    for (size_t i = 0; i < output.size(); ++i) {
      if (i > 0) sql += ", ";
      auto it = rel.columns.find(output[i].id);
      if (it == rel.columns.end()) {
        return Status::Internal("output column #" +
                                std::to_string(output[i].id) +
                                " missing from rendered relation");
      }
      sql += rel.alias + "." + it->second + " AS " + names[i];
    }
    sql += " FROM " + rel.from_text;
    if (!where.empty()) sql += " WHERE " + where;
    return GeneratedSql{sql, names};
  }

  Result<GeneratedSql> RenderJoin(const PlanNode& node, int depth) {
    PDW_ASSIGN_OR_RETURN(Rel left, RenderRel(*node.children[0], depth));
    PDW_ASSIGN_OR_RETURN(Rel right, RenderRel(*node.children[1], depth));
    SqlScope scope = MergeScopes(ScopeOf(left), ScopeOf(right));
    std::vector<std::string> conds;
    for (const auto& c : node.conjuncts) {
      PDW_ASSIGN_OR_RETURN(std::string s, RenderExpr(*c, scope));
      conds.push_back(s);
    }
    std::vector<std::string> names = UniqueNames(node.output);
    std::string select_list;
    {
      SqlScope out_scope = scope;
      for (size_t i = 0; i < node.output.size(); ++i) {
        if (i > 0) select_list += ", ";
        auto it = out_scope.find(node.output[i].id);
        if (it == out_scope.end()) {
          return Status::Internal("join output column missing from inputs");
        }
        select_list += it->second + " AS " + names[i];
      }
    }

    std::string sql;
    switch (node.join_type) {
      case LogicalJoinType::kInner:
      case LogicalJoinType::kCross:
      case LogicalJoinType::kLeftOuter: {
        const char* kw = node.join_type == LogicalJoinType::kLeftOuter
                             ? " LEFT JOIN "
                             : (conds.empty() ? " CROSS JOIN " : " INNER JOIN ");
        sql = "SELECT " + select_list + " FROM " + left.from_text + kw +
              right.from_text;
        if (!conds.empty()) sql += " ON " + Join(conds, " AND ");
        break;
      }
      case LogicalJoinType::kSemi:
      case LogicalJoinType::kAnti: {
        // EXISTS / NOT EXISTS sub-query; the inner engine re-unnests it.
        sql = "SELECT " + select_list + " FROM " + left.from_text + " WHERE ";
        if (node.join_type == LogicalJoinType::kAnti) sql += "NOT ";
        sql += "EXISTS (SELECT 1 AS one FROM " + right.from_text;
        if (!conds.empty()) sql += " WHERE " + Join(conds, " AND ");
        sql += ")";
        break;
      }
    }
    return GeneratedSql{sql, names};
  }

  Result<GeneratedSql> RenderAggregate(const PlanNode& node, int depth) {
    PDW_ASSIGN_OR_RETURN(Rel rel, RenderRel(*node.children[0], depth));
    SqlScope scope = ScopeOf(rel);
    std::vector<std::string> names = UniqueNames(node.output);

    std::string sql = "SELECT ";
    std::vector<std::string> group_texts;
    size_t idx = 0;
    for (ColumnId g : node.group_by) {
      auto it = scope.find(g);
      if (it == scope.end()) {
        return Status::Internal("group-by column not in scope");
      }
      if (idx > 0) sql += ", ";
      sql += it->second + " AS " + names[idx];
      group_texts.push_back(it->second);
      ++idx;
    }
    for (const auto& a : node.aggregates) {
      if (idx > 0) sql += ", ";
      std::string inner;
      const char* func = "COUNT";
      switch (a.func) {
        case AggFunc::kCountStar:
          inner = "*";
          func = "COUNT";
          break;
        case AggFunc::kCount: func = "COUNT"; break;
        case AggFunc::kSum: func = "SUM"; break;
        case AggFunc::kMin: func = "MIN"; break;
        case AggFunc::kMax: func = "MAX"; break;
        case AggFunc::kAvg: func = "AVG"; break;
      }
      if (inner.empty()) {
        PDW_ASSIGN_OR_RETURN(inner, RenderExpr(*a.arg, scope));
        if (a.distinct) inner = "DISTINCT " + inner;
      }
      sql += std::string(func) + "(" + inner + ") AS " + names[idx];
      ++idx;
    }
    if (node.group_by.empty() && node.aggregates.empty()) {
      return Status::Internal("aggregate node with no outputs");
    }
    sql += " FROM " + rel.from_text;
    if (!group_texts.empty()) sql += " GROUP BY " + Join(group_texts, ", ");
    return GeneratedSql{sql, names};
  }

  std::string db_;
  int seq_ = 0;
};

}  // namespace

Result<GeneratedSql> GenerateSql(const PlanNode& subtree,
                                 const std::string& database_prefix) {
  Generator gen(database_prefix);
  // A top-level Sort contributes an ORDER BY on the step's own statement.
  if (subtree.kind == PhysOpKind::kSort) {
    PDW_ASSIGN_OR_RETURN(Generator::Rel rel,
                         gen.RenderRel(*subtree.children[0], 1));
    SqlScope scope = gen.ScopeOf(rel);
    std::vector<std::string> names =
        Generator::UniqueNames(subtree.output);
    std::string sql = "SELECT ";
    for (size_t i = 0; i < subtree.output.size(); ++i) {
      if (i > 0) sql += ", ";
      auto it = rel.columns.find(subtree.output[i].id);
      if (it == rel.columns.end()) {
        return Status::Internal("sort output column missing");
      }
      sql += rel.alias + "." + it->second + " AS " + names[i];
    }
    sql += " FROM " + rel.from_text;
    PDW_ASSIGN_OR_RETURN(std::string ob,
                         gen.OrderByClause(subtree.sort_items, scope));
    sql += ob;
    return GeneratedSql{sql, names};
  }
  return gen.RenderSelect(subtree, 1);
}

}  // namespace pdw
