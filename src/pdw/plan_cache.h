#ifndef PDW_PDW_PLAN_CACHE_H_
#define PDW_PDW_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/query_profile.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"

namespace pdw {

/// Per-table statistics versions — the invalidation anchor shared by every
/// keyed cache on the control node (plan cache, result cache). The
/// appliance bumps a table's version on LoadRows / RefreshStatistics; a
/// cache entry recording an older version for any table it depends on is
/// stale and must not be served.
///
/// Thread-safe; one instance per appliance, shared by its caches.
class TableVersionTracker {
 public:
  /// Current version of a table (0 until first bump). Case-insensitive.
  uint64_t Version(const std::string& table) const;
  void Bump(const std::string& table);

  /// True when every recorded (table, version) pair still matches.
  bool IsCurrent(
      const std::vector<std::pair<std::string, uint64_t>>& versions) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> versions_;  ///< Lowercase table -> version.
};

/// Canonical cache-key form of a query text: whitespace runs collapse to a
/// single space and everything *outside* single-quoted string literals is
/// lowercased (literal contents are data and must keep their case), so
/// reformatting a query still hits the cache.
std::string NormalizeSqlForPlanCache(const std::string& sql);

/// Serializes every compilation knob that can change the produced plan into
/// a stable string. Two option sets with different fingerprints always get
/// distinct cache entries.
std::string FingerprintCompilerOptions(const PdwCompilerOptions& options);

/// Everything the control node must retain to re-execute a compiled query
/// without re-running the parse→memo→XML→enumeration pipeline.
struct CachedDsqlPlan {
  DsqlPlan dsql;
  std::vector<std::string> output_names;
  std::string plan_text;             ///< EXPLAIN rendering of the plan tree.
  double modeled_cost = 0;
  obs::OptimizerProfile optimizer;   ///< Search counters of the original run.
  /// Statistics version of every base table the plan scans, captured at
  /// compile time; a mismatch at lookup time invalidates the entry.
  std::vector<std::pair<std::string, uint64_t>> table_versions;
};

/// The control node's compiled-DSQL-plan cache: an LRU keyed by
/// (normalized SQL, compiler-options fingerprint) and invalidated through
/// per-table statistics versions, which the appliance bumps on LoadRows /
/// RefreshStatistics. A plan compiled against stale statistics is never
/// served — distribution-dependent plan choices (§3.2) hinge on those
/// statistics.
///
/// All methods are thread-safe; concurrent sessions share one cache.
/// Hit/miss/invalidation counts are mirrored into the global obs metrics
/// registry as plan_cache.* counters plus a plan_cache.size gauge.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;          ///< Includes invalidations.
    uint64_t invalidations = 0;   ///< Misses caused by stale statistics.
    uint64_t insertions = 0;
    uint64_t evictions = 0;       ///< LRU capacity evictions.
  };

  /// Introspection row of one cached plan, as surfaced through the
  /// sys.dm_pdw_plan_cache system view (MRU first).
  struct EntryInfo {
    std::string normalized_sql;
    std::string options_fingerprint;
    uint64_t hits = 0;          ///< Lookups served from this entry.
    int num_steps = 0;          ///< DSQL steps of the cached plan.
    double modeled_cost = 0;
    /// Base tables the plan reads (the invalidation anchors).
    std::vector<std::string> tables;
  };

  /// `versions` is the stats-version tracker invalidating this cache;
  /// null creates a private one (standalone/unit-test use). The appliance
  /// passes one shared tracker to both the plan and the result cache so a
  /// single LoadRows invalidates both.
  explicit PlanCache(size_t capacity = 128,
                     std::shared_ptr<TableVersionTracker> versions = nullptr);

  /// Current statistics version of a table (0 until first bump).
  uint64_t TableVersion(const std::string& table) const;
  /// Invalidates every cached plan reading `table` (lazily, at lookup).
  void BumpTableVersion(const std::string& table);
  const std::shared_ptr<TableVersionTracker>& versions() const {
    return versions_;
  }

  /// Returns the cached plan for the key if present and every recorded
  /// table version still matches; stale entries are evicted and counted as
  /// invalidations.
  std::optional<CachedDsqlPlan> Lookup(const std::string& normalized_sql,
                                       const std::string& options_fingerprint);

  /// Inserts (or replaces) the entry for the key, evicting the least
  /// recently used entry when over capacity.
  void Insert(const std::string& normalized_sql,
              const std::string& options_fingerprint, CachedDsqlPlan plan);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

  /// Point-in-time copy of every cached entry in LRU order (most recently
  /// used first), for DMV queries.
  std::vector<EntryInfo> ListEntries() const;

 private:
  struct Entry {
    std::string key;
    CachedDsqlPlan plan;
    uint64_t hits = 0;
  };

  std::string Key(const std::string& normalized_sql,
                  const std::string& options_fingerprint) const {
    return options_fingerprint + "\n" + normalized_sql;
  }

  mutable std::mutex mu_;
  size_t capacity_;
  std::shared_ptr<TableVersionTracker> versions_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace pdw

#endif  // PDW_PDW_PLAN_CACHE_H_
