#ifndef PDW_PDW_COMPILER_H_
#define PDW_PDW_COMPILER_H_

#include <string>
#include <vector>

#include "optimizer/serial_optimizer.h"
#include "pdw/baseline.h"
#include "pdw/pdw_optimizer.h"
#include "xmlio/memo_xml.h"

namespace pdw {

/// Knobs for the full compilation pipeline.
struct PdwCompilerOptions {
  MemoOptions memo;
  NormalizerOptions normalizer;
  PdwOptimizerOptions pdw;
  /// Round-trip the memo through XML (the real Fig. 2 interface). Turning
  /// this off skips serialization for micro-benchmarks.
  bool use_xml_interface = true;
  /// Also compute the best serial plan and its naive parallelization.
  bool build_baseline = true;
};

/// Everything the control node produces for one query (Fig. 2): the serial
/// compilation artifacts, the XML-encoded search space, the PDW parallel
/// plan, and (optionally) the parallelized-serial baseline.
struct PdwCompilation {
  std::vector<std::string> output_names;
  CompilationResult serial;
  std::string memo_xml;
  ImportedMemo imported;
  PdwPlanResult parallel;
  PlanNodePtr serial_plan;    ///< Best serial plan (if build_baseline).
  PlanNodePtr baseline_plan;  ///< Parallelized serial plan (if build_baseline).
  double baseline_cost = 0;   ///< Total DMS cost of baseline_plan.
  /// Memo search-space stats, surfaced in DMVs and the profile JSON.
  int memo_groups = 0;
  size_t memo_exprs = 0;
  bool budget_exhausted = false;  ///< Join enumeration was degraded.
  bool beam_used = false;         ///< Degradation ran as a beam search.
  /// Wall seconds of every Fig. 2 component, in pipeline order (parse,
  /// bind, normalize, memo, xml_export, xml_import, pdw_optimize,
  /// baseline); the observability substrate of EXPLAIN ANALYZE.
  std::vector<std::pair<std::string, double>> phase_seconds;
};

/// Runs the whole control-node compilation pipeline against the shell
/// catalog: parse -> bind -> normalize -> serial memo -> XML export ->
/// PDW memo import -> bottom-up parallel optimization -> plan.
Result<PdwCompilation> CompilePdwQuery(const Catalog& shell_catalog,
                                       const std::string& sql,
                                       const PdwCompilerOptions& options = {});

}  // namespace pdw

#endif  // PDW_PDW_COMPILER_H_
