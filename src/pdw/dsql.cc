#include "pdw/dsql.h"

#include "common/string_util.h"

namespace pdw {

namespace {

/// Rewrites the plan bottom-up, cutting at every Move node: the subtree
/// below a Move is emitted as a DMS step and replaced by a TempScan of the
/// step's destination table.
class DsqlSplitter {
 public:
  DsqlSplitter(std::vector<DsqlStep>* steps, const std::string& db)
      : steps_(steps), db_(db) {}

  Result<PlanNodePtr> Split(PlanNodePtr node) {
    for (auto& c : node->children) {
      PDW_ASSIGN_OR_RETURN(c, Split(std::move(c)));
    }
    if (node->kind != PhysOpKind::kMove) return node;

    const PlanNode& source = *node->children[0];
    PDW_ASSIGN_OR_RETURN(GeneratedSql gen, GenerateSql(source, db_));

    DsqlStep step;
    step.kind = DsqlStepKind::kDms;
    step.move_kind = node->move_kind;
    step.sql = gen.sql;
    step.source_distribution = source.distribution;
    step.dest_table = "TEMP_ID_" + std::to_string(++temp_counter_);
    step.dest_distribution = node->distribution;
    step.estimated_rows = node->cardinality;
    step.estimated_cost = node->move_cost;
    if (source.kind == PhysOpKind::kHashAggregate &&
        source.agg_phase == AggPhase::kLocal && !source.children.empty()) {
      step.preagg = true;
      step.preagg_rows_in = source.children[0]->cardinality;
    }
    for (size_t i = 0; i < source.output.size(); ++i) {
      step.dest_schema.AddColumn(
          ColumnDef{gen.column_names[i], source.output[i].type, true});
    }
    for (ColumnId hash_col : node->shuffle_columns) {
      int pos = FindBinding(source.output, hash_col);
      if (pos < 0) {
        return Status::Internal("shuffle column missing from move source");
      }
      step.hash_column_ordinals.push_back(pos);
    }
    steps_->push_back(std::move(step));

    // Replace the move with a scan of the temp table. Column ids survive;
    // the names switch to what the generated SQL exposed.
    auto temp = std::make_unique<PlanNode>();
    temp->kind = PhysOpKind::kTempScan;
    temp->table_name = steps_->back().dest_table;
    temp->output = source.output;
    for (size_t i = 0; i < temp->output.size(); ++i) {
      temp->output[i].name = gen.column_names[i];
    }
    temp->cardinality = node->cardinality;
    temp->row_width = node->row_width;
    temp->distribution = node->distribution;
    return PlanNodePtr(std::move(temp));
  }

 private:
  std::vector<DsqlStep>* steps_;
  std::string db_;
  int temp_counter_ = 0;
};

}  // namespace

Result<DsqlPlan> GenerateDsql(const PlanNode& plan,
                              std::vector<std::string> output_names,
                              const std::string& database_prefix,
                              int visible_columns) {
  DsqlPlan out;
  out.output_names = std::move(output_names);
  out.visible_columns = visible_columns;
  out.total_move_cost = TotalMoveCost(plan);

  DsqlSplitter splitter(&out.steps, database_prefix);
  PDW_ASSIGN_OR_RETURN(PlanNodePtr top, splitter.Split(plan.Clone()));

  // Return step. A top Sort (and Limit) determines the engine-side merge.
  DsqlStep ret;
  ret.kind = DsqlStepKind::kReturn;
  ret.source_distribution = top->distribution;
  ret.read_single_node = top->distribution.is_replicated();
  ret.estimated_rows = top->cardinality;

  const PlanNode* probe = top.get();
  if (probe->kind == PhysOpKind::kLimit) {
    ret.final_limit = probe->limit;
    if (!probe->children.empty() &&
        probe->children[0]->kind == PhysOpKind::kSort) {
      probe = probe->children[0].get();
    }
  }
  if (probe->kind == PhysOpKind::kSort) {
    for (const auto& item : probe->sort_items) {
      int pos = FindBinding(top->output, item.column);
      if (pos >= 0) ret.merge_sort.emplace_back(pos, item.ascending);
    }
  }

  PDW_ASSIGN_OR_RETURN(GeneratedSql gen, GenerateSql(*top, database_prefix));
  ret.sql = gen.sql;
  if (out.output_names.empty()) out.output_names = gen.column_names;
  out.steps.push_back(std::move(ret));
  return out;
}

std::string DsqlPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const DsqlStep& s = steps[i];
    out += StringFormat("DSQL step %zu: ", i);
    if (s.kind == DsqlStepKind::kDms) {
      out += DmsOpKindToString(s.move_kind);
      if (!s.hash_column_ordinals.empty()) {
        out += StringFormat(" (hash on %s)",
                            s.dest_schema
                                .column(s.hash_column_ordinals[0])
                                .name.c_str());
      }
      out += StringFormat(" -> %s  [est. rows=%.0f, cost=%.6f]\n",
                          s.dest_table.c_str(), s.estimated_rows,
                          s.estimated_cost);
    } else {
      out += "RETURN";
      if (!s.merge_sort.empty()) out += " (merge-sorted)";
      if (s.final_limit >= 0) {
        out += StringFormat(" (top %lld)",
                            static_cast<long long>(s.final_limit));
      }
      out += StringFormat("  [est. rows=%.0f]\n", s.estimated_rows);
    }
    out += "  " + s.sql + "\n";
  }
  return out;
}

}  // namespace pdw
