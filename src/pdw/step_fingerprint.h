#ifndef PDW_PDW_STEP_FINGERPRINT_H_
#define PDW_PDW_STEP_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdw/dsql.h"
#include "pdw/plan_cache.h"

namespace pdw {

/// Identity of one DSQL step for cross-query sub-plan sharing: two steps
/// with equal fingerprints materialize byte-identical temp tables, so a
/// concurrent query may consume the other's destination instead of
/// re-running the move (ROADMAP item 1; grounding: Multi Query
/// Optimization in GLADE).
///
/// The identity covers everything that determines the temp table's bytes:
///  * the step's SQL, canonicalized by stripping the per-execution
///    TEMP_ID_Q<qid>_ uniquifier (reusing the plan-cache idea that
///    normalized text is the key);
///  * input temp lineage — every temp-table reference inside the SQL is
///    substituted by the *fingerprint* of the step that produced it, so
///    matching chains through upstream steps regardless of how the two
///    plans numbered their temps (and cascades: if step 1 matches, step 2
///    reading its output can match too);
///  * the statistics versions of every base table the SQL scans (the same
///    TableVersionTracker anchoring plan- and result-cache invalidation),
///    so a load between two queries splits their fingerprints;
///  * the DMS movement kind, source/destination distribution properties,
///    hash-routing ordinals, and the destination schema;
///  * the local engine and DMS codec labels plus the resolved PDW_WLM_SHARE
///    knob, fingerprinted like the other execution-affecting knobs — only
///    executions whose every byte-determining knob agrees may rendezvous.
struct StepFingerprint {
  /// Full canonical identity — the SharedStepRegistry key. The whole text
  /// (not a hash) is the key, so equal keys imply equal steps by
  /// construction; hash collisions cannot produce wrong sharing.
  std::string text;
  /// FNV-1a/64 digest of `text` in hex, for compact display in the
  /// sys.dm_pdw_shared_steps DMV and traces.
  std::string hex;

  /// False for Return steps (never shared — they assemble the client
  /// stream) and for steps whose lineage could not be resolved.
  bool shareable() const { return !text.empty(); }
};

/// FNV-1a/64 of `text`, rendered as 16 lowercase hex digits.
std::string FingerprintHex(const std::string& text);

/// Execution-context labels baked into every fingerprint.
struct StepFingerprintOptions {
  std::string engine_label;  ///< "row" | "batch" (per-node engine).
  std::string codec_label;   ///< "row" | "columnar" (DMS wire codec).
};

/// Computes one fingerprint per step of an already-uniquified DSQL plan
/// (temp names TEMP_ID_Q<query_id>_k, as ExecuteDsql sees them). Return
/// steps get a non-shareable placeholder. `versions` must be the
/// appliance's shared tracker so stats bumps split fingerprints exactly
/// when they invalidate cached plans.
std::vector<StepFingerprint> ComputeStepFingerprints(
    const DsqlPlan& plan, uint64_t query_id,
    const TableVersionTracker& versions, const StepFingerprintOptions& opts);

}  // namespace pdw

#endif  // PDW_PDW_STEP_FINGERPRINT_H_
