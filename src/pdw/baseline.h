#ifndef PDW_PDW_BASELINE_H_
#define PDW_PDW_BASELINE_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "pdw/cost_model.h"
#include "pdw/interesting_props.h"
#include "plan/plan_node.h"

namespace pdw {

/// The strawman the paper argues against (§2.5): take the best *serial*
/// plan verbatim — same join order, same operator tree — and make it a
/// valid distributed plan by inserting, at each operator, the locally
/// cheapest data movements. No global search over distributions, no
/// alternative join orders.
///
/// `serial_plan` is consumed (moves are spliced into it). Returns the
/// parallelized plan; its quality is compared against the PDW optimizer's
/// plan by bench_serial_vs_parallel and bench_tpch_suite.
Result<PlanNodePtr> ParallelizeSerialPlan(PlanNodePtr serial_plan,
                                          const Topology& topology,
                                          const ColumnEquivalence& equivalence,
                                          const DmsCostParameters& params = {});

}  // namespace pdw

#endif  // PDW_PDW_BASELINE_H_
