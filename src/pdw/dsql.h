#ifndef PDW_PDW_DSQL_H_
#define PDW_PDW_DSQL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "pdw/sql_gen.h"
#include "plan/plan_node.h"

namespace pdw {

/// Kind of one DSQL plan step (§2.4): DMS operations move intermediate
/// results between nodes into temp tables; the final Return operation
/// streams result rows back to the client.
enum class DsqlStepKind { kDms, kReturn };

/// One serially-executed step of a DSQL plan.
struct DsqlStep {
  DsqlStepKind kind = DsqlStepKind::kDms;

  /// SQL text executed against the local DBMS instance of every node that
  /// hosts the step's source data.
  std::string sql;
  /// Where the source SQL runs (compute nodes when distributed/replicated,
  /// the control node when kControl).
  DistributionProperty source_distribution;

  // --- kDms only ---
  DmsOpKind move_kind = DmsOpKind::kShuffle;
  /// Destination temp table name (TEMP_ID_k) and its schema.
  std::string dest_table;
  Schema dest_schema;
  /// Ordinals (within the source SQL's output) of the hash columns for
  /// Shuffle/Trim routing.
  std::vector<int> hash_column_ordinals;
  DistributionProperty dest_distribution;
  /// The step's source SQL is a partial (local-phase) aggregate, i.e. the
  /// move ships pre-aggregated rows — either the pushed-below-a-join
  /// partial of PR 9 or the classic two-phase local aggregate. Profiles
  /// report rows_in/rows_out/reduction for such steps.
  bool preagg = false;
  double preagg_rows_in = 0;  ///< Estimated global input rows of the partial.

  // --- kReturn only ---
  /// Global result finalization applied while assembling per-node streams:
  /// ordinals into the result row, ascending flags, optional row limit.
  std::vector<std::pair<int, bool>> merge_sort;
  int64_t final_limit = -1;
  /// Deduplicate identical per-node streams (replicated source).
  bool read_single_node = false;

  double estimated_rows = 0;
  double estimated_cost = 0;
};

/// A complete DSQL plan: steps executed one at a time (no pipelining
/// between steps — intermediate results are always materialized, §3.3.1).
struct DsqlPlan {
  std::vector<DsqlStep> steps;
  std::vector<std::string> output_names;
  /// Client-visible leading columns of the final result (-1 = all); hidden
  /// trailing ORDER BY carriers are trimmed during result assembly.
  int visible_columns = -1;
  double total_move_cost = 0;

  /// Paper-style rendering (cf. Fig. 3(e) / Fig. 7): one block per step.
  std::string ToString() const;
};

/// Converts an optimized parallel plan (with Move nodes) into a DSQL plan:
/// each Move becomes a DMS step whose source SQL is generated from the
/// subtree below it (earlier steps' results appearing as temp-table
/// scans), and the remaining top fragment becomes the Return step.
Result<DsqlPlan> GenerateDsql(const PlanNode& plan,
                              std::vector<std::string> output_names,
                              const std::string& database_prefix = "tpch",
                              int visible_columns = -1);

}  // namespace pdw

#endif  // PDW_PDW_DSQL_H_
