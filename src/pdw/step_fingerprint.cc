#include "pdw/step_fingerprint.h"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "plan/distribution.h"

namespace pdw {

namespace {

std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to) {
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string::npos) {
      out.append(s, pos, std::string::npos);
      return out;
    }
    out.append(s, pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

/// Parses one bracketed identifier "[ident]" starting at (*pos) == '[';
/// on success stores the identifier and advances *pos past the ']'.
bool ParseBracketed(const std::string& s, size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '[') return false;
  size_t close = s.find(']', *pos + 1);
  if (close == std::string::npos) return false;
  *out = s.substr(*pos + 1, close - *pos - 1);
  *pos = close + 1;
  return true;
}

/// Rewrites every temp-table reference of `sql` (the canonical
/// [tempdb].[dbo].[TEMP_ID_k] form the SQL generator emits) to the
/// fingerprint digest of the step that produced it, and collects the base
/// tables ([<db>].[dbo].[<table>] references) the SQL scans. Returns false
/// when a temp reference has no known producer — such a step must not be
/// shared, since its input lineage cannot be proven.
bool SubstituteLineage(const std::string& sql,
                       const std::map<std::string, std::string>& producers,
                       std::string* out, std::set<std::string>* base_tables) {
  out->clear();
  out->reserve(sql.size());
  size_t i = 0;
  while (i < sql.size()) {
    if (sql[i] != '[') {
      *out += sql[i++];
      continue;
    }
    // Try the generator's three-part form [db].[schema].[name].
    size_t probe = i;
    std::string db, schema, name;
    bool three_part = ParseBracketed(sql, &probe, &db) &&
                      probe + 1 < sql.size() && sql[probe] == '.' &&
                      sql[probe + 1] == '[' &&
                      (++probe, ParseBracketed(sql, &probe, &schema)) &&
                      probe + 1 < sql.size() && sql[probe] == '.' &&
                      sql[probe + 1] == '[' &&
                      (++probe, ParseBracketed(sql, &probe, &name));
    if (!three_part) {
      *out += sql[i++];
      continue;
    }
    if (db == "tempdb" && name.rfind("TEMP_ID_", 0) == 0) {
      auto it = producers.find(name);
      if (it == producers.end()) return false;
      *out += "[tempdb].[dbo].[@" + it->second + "]";
    } else {
      base_tables->insert(ToLower(name));
      out->append(sql, i, probe - i);
    }
    i = probe;
  }
  return true;
}

/// Distribution rendered by *kind* only. ToString() embeds ColumnIds,
/// which are per-plan internal numbering — two plans compiling the same
/// step (or two UNION arms inside one plan) bind different ids for the
/// same column, and none of that changes the materialized bytes. What
/// does determine the bytes — which nodes run the source SQL and how rows
/// are routed — is the kind here plus move_kind and the hash ordinals.
std::string DistributionKindLabel(const DistributionProperty& dist) {
  switch (dist.kind) {
    case DistributionKind::kDistributed:
      return "distributed";
    case DistributionKind::kReplicated:
      return "replicated";
    case DistributionKind::kControl:
      return "control";
  }
  return "?";
}

}  // namespace

std::string FingerprintHex(const std::string& text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::vector<StepFingerprint> ComputeStepFingerprints(
    const DsqlPlan& plan, uint64_t query_id,
    const TableVersionTracker& versions, const StepFingerprintOptions& opts) {
  const std::string uniquifier = "TEMP_ID_Q" + std::to_string(query_id) + "_";
  // Canonical dest name (TEMP_ID_k) -> digest of the step that fills it.
  std::map<std::string, std::string> producers;
  std::vector<StepFingerprint> out;
  out.reserve(plan.steps.size());
  for (const DsqlStep& step : plan.steps) {
    StepFingerprint fp;
    if (step.kind != DsqlStepKind::kDms) {
      out.push_back(std::move(fp));
      continue;
    }
    std::string canon_sql = ReplaceAll(step.sql, uniquifier, "TEMP_ID_");
    std::string canon_dest = ReplaceAll(step.dest_table, uniquifier, "TEMP_ID_");
    std::string substituted;
    std::set<std::string> base_tables;
    if (!SubstituteLineage(canon_sql, producers, &substituted, &base_tables)) {
      out.push_back(std::move(fp));  // unresolvable lineage: never share
      continue;
    }
    std::string text = "v1|eng:" + opts.engine_label +
                       "|codec:" + opts.codec_label + "|share:1";
    text += "|move:";
    text += DmsOpKindToString(step.move_kind);
    text += "|src:" + DistributionKindLabel(step.source_distribution);
    text += "|dst:" + DistributionKindLabel(step.dest_distribution);
    text += "|hash:";
    for (size_t i = 0; i < step.hash_column_ordinals.size(); ++i) {
      if (i > 0) text += ",";
      text += std::to_string(step.hash_column_ordinals[i]);
    }
    text += "|schema:";
    for (const ColumnDef& col : step.dest_schema.columns()) {
      text += col.name + ":" + std::to_string(static_cast<int>(col.type)) +
              ":" + (col.nullable ? "1" : "0") + ",";
    }
    text += "|preagg:";
    text += step.preagg ? "1" : "0";
    // std::set iteration keeps the table@version list sorted, so textually
    // different-but-equivalent FROM orders never split a fingerprint.
    text += "|tables:";
    for (const std::string& table : base_tables) {
      text += table + "@" + std::to_string(versions.Version(table)) + ",";
    }
    text += "|sql:" + substituted;
    fp.hex = FingerprintHex(text);
    fp.text = std::move(text);
    producers[canon_dest] = fp.hex;
    out.push_back(std::move(fp));
  }
  return out;
}

}  // namespace pdw
