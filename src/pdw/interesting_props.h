#ifndef PDW_PDW_INTERESTING_PROPS_H_
#define PDW_PDW_INTERESTING_PROPS_H_

#include <map>
#include <set>

#include "algebra/equivalence.h"
#include "optimizer/memo.h"

namespace pdw {

/// Interesting-property derivation (paper §3.2 and Fig. 4 step 04) — an
/// extension of System R's interesting orders to data distribution. The
/// interesting columns of a group are:
///  (a) columns referenced in equality join predicates (they make local and
///      directed joins possible), and
///  (b) group-by columns (they allow single-phase local aggregation),
/// propagated top-down from the root so a deep sub-plan knows which
/// distributions could pay off later.
struct InterestingProperties {
  /// Column equivalence classes from every equality join predicate in the
  /// memo; distribution properties are canonicalized through this.
  ColumnEquivalence equivalence;
  /// Per group: canonical representatives of interesting columns that the
  /// group's output can actually be distributed on.
  std::map<GroupId, std::set<ColumnId>> interesting;
};

InterestingProperties DeriveInterestingProperties(const Memo& memo);

}  // namespace pdw

#endif  // PDW_PDW_INTERESTING_PROPS_H_
