#include "pdw/compiler.h"

#include "sql/parser.h"

namespace pdw {

Result<PdwCompilation> CompilePdwQuery(const Catalog& shell_catalog,
                                       const std::string& sql,
                                       const PdwCompilerOptions& options) {
  PdwCompilation out;

  // Fig. 2 components 1-2: parse + "SQL Server" compilation against the
  // shell database. A trailing OPTION(...) hint (§3.1) steers the PDW
  // optimizer's enforcer choices.
  PDW_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  PdwCompilerOptions effective = options;
  if (stmt->hint != sql::DistributionHint::kNone) {
    effective.pdw.hint = stmt->hint;
  }
  PDW_ASSIGN_OR_RETURN(out.serial, CompileSelect(shell_catalog, *stmt,
                                                 options.memo,
                                                 options.normalizer));
  out.output_names = out.serial.output_names;

  // Components 3-4a: XML export and PDW-side memo parse. The PDW optimizer
  // always runs against the *imported* memo so the interface boundary is
  // actually exercised.
  Memo* pdw_memo = out.serial.memo.get();
  if (options.use_xml_interface) {
    out.memo_xml = MemoToXml(*out.serial.memo, *out.serial.stats);
    PDW_ASSIGN_OR_RETURN(out.imported,
                         MemoFromXml(out.memo_xml, shell_catalog, options.memo));
    pdw_memo = out.imported.memo.get();
  }

  // Component 4b: bottom-up parallel optimization.
  PdwOptimizer optimizer(pdw_memo, shell_catalog.topology(), effective.pdw);
  PDW_ASSIGN_OR_RETURN(out.parallel, optimizer.Optimize());

  if (options.build_baseline) {
    // §2.5 comparison: best serial plan, naively parallelized.
    PDW_ASSIGN_OR_RETURN(out.serial_plan,
                         ExtractBestSerialPlan(out.serial.memo.get()));
    PDW_ASSIGN_OR_RETURN(
        out.baseline_plan,
        ParallelizeSerialPlan(out.serial_plan->Clone(),
                              shell_catalog.topology(),
                              optimizer.interesting().equivalence,
                              effective.pdw.cost_params));
    out.baseline_cost = TotalMoveCost(*out.baseline_plan);
  }
  return out;
}

}  // namespace pdw
