#include "pdw/compiler.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace pdw {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<PdwCompilation> CompilePdwQuery(const Catalog& shell_catalog,
                                       const std::string& sql,
                                       const PdwCompilerOptions& options) {
  PdwCompilation out;
  obs::TraceSpan pipeline("compile.pipeline");

  // Fig. 2 components 1-2: parse + "SQL Server" compilation against the
  // shell database. A trailing OPTION(...) hint (§3.1) steers the PDW
  // optimizer's enforcer choices.
  double t0 = NowSeconds();
  std::unique_ptr<sql::SelectStatement> stmt;
  {
    obs::TraceSpan span("compile.parse");
    PDW_ASSIGN_OR_RETURN(stmt, sql::ParseSelect(sql));
  }
  out.phase_seconds.emplace_back("parse", NowSeconds() - t0);
  PdwCompilerOptions effective = options;
  if (stmt->hint != sql::DistributionHint::kNone) {
    effective.pdw.hint = stmt->hint;
  }
  PDW_ASSIGN_OR_RETURN(out.serial, CompileSelect(shell_catalog, *stmt,
                                                 options.memo,
                                                 options.normalizer));
  out.output_names = out.serial.output_names;
  for (const auto& phase : out.serial.phase_seconds) {
    out.phase_seconds.push_back(phase);
  }
  out.memo_groups = out.serial.memo->num_groups();
  out.memo_exprs = out.serial.memo->num_exprs();
  out.budget_exhausted = out.serial.memo->budget_exhausted();
  out.beam_used = out.serial.memo->beam_used();
  if (out.budget_exhausted) {
    // The old cliff degraded plan quality silently; make it observable.
    obs::MetricsRegistry::Global().Count("optimizer.budget_exhausted");
  }
  // One thread knob steers the whole pipeline unless the PDW side is
  // overridden explicitly.
  if (effective.pdw.opt_threads < 0) {
    effective.pdw.opt_threads = options.memo.opt_threads;
  }

  // Components 3-4a: XML export and PDW-side memo parse. The PDW optimizer
  // always runs against the *imported* memo so the interface boundary is
  // actually exercised.
  Memo* pdw_memo = out.serial.memo.get();
  if (options.use_xml_interface) {
    t0 = NowSeconds();
    {
      obs::TraceSpan span("compile.xml_export");
      out.memo_xml = MemoToXml(*out.serial.memo, *out.serial.stats);
      span.AddAttr("bytes", static_cast<double>(out.memo_xml.size()));
    }
    out.phase_seconds.emplace_back("xml_export", NowSeconds() - t0);
    t0 = NowSeconds();
    {
      obs::TraceSpan span("compile.xml_import");
      PDW_ASSIGN_OR_RETURN(
          out.imported, MemoFromXml(out.memo_xml, shell_catalog, options.memo));
    }
    out.phase_seconds.emplace_back("xml_import", NowSeconds() - t0);
    pdw_memo = out.imported.memo.get();
  }

  // Component 4b: bottom-up parallel optimization.
  t0 = NowSeconds();
  PdwOptimizer optimizer(pdw_memo, shell_catalog.topology(), effective.pdw);
  {
    obs::TraceSpan span("compile.pdw_optimize");
    PDW_ASSIGN_OR_RETURN(out.parallel, optimizer.Optimize());
    span.AddAttr("groups", static_cast<double>(out.parallel.groups_optimized));
    span.AddAttr("options",
                 static_cast<double>(out.parallel.options_considered));
  }
  out.phase_seconds.emplace_back("pdw_optimize", NowSeconds() - t0);

  if (options.build_baseline) {
    // §2.5 comparison: best serial plan, naively parallelized.
    t0 = NowSeconds();
    obs::TraceSpan span("compile.baseline");
    PDW_ASSIGN_OR_RETURN(out.serial_plan,
                         ExtractBestSerialPlan(out.serial.memo.get(),
                                               effective.pdw.opt_threads));
    PDW_ASSIGN_OR_RETURN(
        out.baseline_plan,
        ParallelizeSerialPlan(out.serial_plan->Clone(),
                              shell_catalog.topology(),
                              optimizer.interesting().equivalence,
                              effective.pdw.cost_params));
    out.baseline_cost = TotalMoveCost(*out.baseline_plan);
    span.End();
    out.phase_seconds.emplace_back("baseline", NowSeconds() - t0);
  }
  return out;
}

}  // namespace pdw
