#ifndef PDW_XML_XML_H_
#define PDW_XML_XML_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace pdw::xml {

/// A minimal XML element tree: element name, attributes, child elements and
/// (optional) text content. This is the interchange format between the
/// "SQL Server" serial optimizer and the PDW parallel optimizer, mirroring
/// the paper's XML generator / memo parser components (Fig. 2, boxes 3-4).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void SetAttr(const std::string& key, std::string value);
  void SetAttr(const std::string& key, int64_t value);
  void SetAttr(const std::string& key, double value);

  /// Returns the attribute value or the empty string if absent.
  const std::string& GetAttr(const std::string& key) const;
  bool HasAttr(const std::string& key) const;
  int64_t GetAttrInt(const std::string& key, int64_t def = 0) const;
  double GetAttrDouble(const std::string& key, double def = 0.0) const;

  /// Appends and returns a new child element.
  Element* AddChild(std::string name);

  /// Appends an already-constructed child element (parser use).
  void AddChildOwned(std::unique_ptr<Element> child) {
    children_.push_back(std::move(child));
  }

  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }

  /// First child with the given element name, or nullptr.
  const Element* FindChild(const std::string& name) const;

  /// All children with the given element name.
  std::vector<const Element*> FindChildren(const std::string& name) const;

  /// Serializes this element (and subtree) as indented XML.
  std::string Serialize() const;

 private:
  void SerializeTo(std::string* out, int indent) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// Escapes &, <, >, " and ' for use in XML text/attribute content.
std::string Escape(const std::string& s);

/// Parses an XML document (subset: elements, attributes, text, comments,
/// XML declaration). Returns the root element.
Result<std::unique_ptr<Element>> Parse(const std::string& text);

}  // namespace pdw::xml

#endif  // PDW_XML_XML_H_
