#include "xml/xml.h"

#include <cctype>

#include "common/string_util.h"

namespace pdw::xml {

void Element::SetAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

void Element::SetAttr(const std::string& key, int64_t value) {
  SetAttr(key, std::to_string(value));
}

void Element::SetAttr(const std::string& key, double value) {
  SetAttr(key, StringFormat("%.17g", value));
}

const std::string& Element::GetAttr(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return kEmpty;
}

bool Element::HasAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

int64_t Element::GetAttrInt(const std::string& key, int64_t def) const {
  if (!HasAttr(key)) return def;
  return std::strtoll(GetAttr(key).c_str(), nullptr, 10);
}

double Element::GetAttrDouble(const std::string& key, double def) const {
  if (!HasAttr(key)) return def;
  return std::strtod(GetAttr(key).c_str(), nullptr);
}

Element* Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

const Element* Element::FindChild(const std::string& name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::FindChildren(const std::string& name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void Element::SerializeTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent), ' ');
  out->push_back('<');
  out->append(name_);
  for (const auto& [k, v] : attrs_) {
    out->push_back(' ');
    out->append(k);
    out->append("=\"");
    out->append(Escape(v));
    out->push_back('"');
  }
  if (children_.empty() && text_.empty()) {
    out->append("/>\n");
    return;
  }
  out->push_back('>');
  if (!text_.empty()) {
    out->append(Escape(text_));
  }
  if (!children_.empty()) {
    out->push_back('\n');
    for (const auto& c : children_) {
      c->SerializeTo(out, indent + 2);
    }
    out->append(static_cast<size_t>(indent), ' ');
  }
  out->append("</");
  out->append(name_);
  out->append(">\n");
}

std::string Element::Serialize() const {
  std::string out = "<?xml version=\"1.0\"?>\n";
  SerializeTo(&out, 0);
  return out;
}

namespace {

/// Single-pass recursive-descent XML parser over a string.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<std::unique_ptr<Element>> ParseDocument() {
    SkipProlog();
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    return std::move(root).ValueOrDie();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  void SkipProlog() {
    SkipWhitespace();
    while (pos_ + 1 < s_.size() && s_[pos_] == '<' &&
           (s_[pos_ + 1] == '?' || s_[pos_ + 1] == '!')) {
      size_t end = s_.find('>', pos_);
      if (end == std::string::npos) {
        pos_ = s_.size();
        return;
      }
      pos_ = end + 1;
      SkipWhitespace();
    }
  }

  bool AtEnd() const { return pos_ >= s_.size(); }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("XML parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  std::string ParseName() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_' || s_[pos_] == '-' || s_[pos_] == ':' ||
            s_[pos_] == '.')) {
      ++pos_;
    }
    return s_.substr(start, pos_ - start);
  }

  std::string Unescape(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      if (in[i] != '&') {
        out += in[i];
        continue;
      }
      size_t semi = in.find(';', i);
      if (semi == std::string::npos) {
        out += in[i];
        continue;
      }
      std::string ent = in.substr(i + 1, semi - i - 1);
      if (ent == "amp") out += '&';
      else if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "quot") out += '"';
      else if (ent == "apos") out += '\'';
      else out += in.substr(i, semi - i + 1);
      i = semi;
    }
    return out;
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    SkipWhitespace();
    if (AtEnd() || s_[pos_] != '<') return Error("expected '<'");
    ++pos_;
    std::string name = ParseName();
    if (name.empty()) return Error("expected element name");
    auto elem = std::make_unique<Element>(name);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unexpected end inside tag");
      if (s_[pos_] == '/') {
        if (pos_ + 1 >= s_.size() || s_[pos_ + 1] != '>') {
          return Error("expected '/>'");
        }
        pos_ += 2;
        return elem;
      }
      if (s_[pos_] == '>') {
        ++pos_;
        break;
      }
      std::string key = ParseName();
      if (key.empty()) return Error("expected attribute name");
      SkipWhitespace();
      if (AtEnd() || s_[pos_] != '=') return Error("expected '='");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (s_[pos_] != '"' && s_[pos_] != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = s_[pos_++];
      size_t end = s_.find(quote, pos_);
      if (end == std::string::npos) return Error("unterminated attribute");
      elem->SetAttr(key, Unescape(s_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }

    // Content: text and child elements until the closing tag.
    std::string text;
    while (true) {
      if (AtEnd()) return Error("unexpected end inside element " + name);
      if (s_[pos_] == '<') {
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '/') {
          pos_ += 2;
          std::string close = ParseName();
          if (close != name) {
            return Error("mismatched closing tag </" + close + "> for <" +
                         name + ">");
          }
          SkipWhitespace();
          if (AtEnd() || s_[pos_] != '>') return Error("expected '>'");
          ++pos_;
          elem->set_text(Unescape(Trim(text)));
          return elem;
        }
        if (pos_ + 3 < s_.size() && s_.compare(pos_, 4, "<!--") == 0) {
          size_t end = s_.find("-->", pos_);
          if (end == std::string::npos) return Error("unterminated comment");
          pos_ = end + 3;
          continue;
        }
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        // Transfer ownership of the parsed child into this element.
        elem->AddChildOwned(std::move(child).ValueOrDie());
        continue;
      }
      text += s_[pos_++];
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Element>> Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace pdw::xml
