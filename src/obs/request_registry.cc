#include "obs/request_registry.h"

#include <algorithm>
#include <chrono>

namespace pdw::obs {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* RequestPhaseName(RequestPhase phase) {
  switch (phase) {
    case RequestPhase::kQueued:
      return "queued";
    case RequestPhase::kCompiling:
      return "compiling";
    case RequestPhase::kAdmitted:
      return "admitted";
    case RequestPhase::kExecuting:
      return "executing";
    case RequestPhase::kComplete:
      return "complete";
    case RequestPhase::kFailed:
      return "failed";
    case RequestPhase::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool IsTerminalPhase(RequestPhase phase) {
  return phase == RequestPhase::kComplete || phase == RequestPhase::kFailed ||
         phase == RequestPhase::kCancelled;
}

int RequestState::TotalRetries() const {
  int total = 0;
  for (const RequestStepState& s : steps) total += s.retries;
  return total;
}

double RequestState::RowsMoved() const {
  double total = 0;
  for (const RequestStepState& s : steps) total += s.rows_moved;
  return total;
}

double RequestState::BytesMoved() const {
  double total = 0;
  for (const RequestStepState& s : steps) total += s.bytes_moved;
  return total;
}

RequestRegistry::RequestRegistry(size_t ring_capacity)
    : epoch_(SteadySeconds()),
      ring_capacity_(std::max<size_t>(1, ring_capacity)) {}

double RequestRegistry::NowSeconds() const { return SteadySeconds() - epoch_; }

void RequestRegistry::Register(uint64_t query_id, uint64_t session_id,
                               std::string sql, std::string engine) {
  double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  RequestState& r = active_[query_id];
  r.query_id = query_id;
  r.session_id = session_id;
  r.sql = std::move(sql);
  r.engine = std::move(engine);
  r.phase = RequestPhase::kQueued;
  r.submit_seconds = now;
}

void RequestRegistry::BeginCompile(uint64_t query_id) {
  double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  it->second.phase = RequestPhase::kCompiling;
  it->second.compile_start_seconds = now;
}

void RequestRegistry::EndCompile(uint64_t query_id, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  it->second.cache_hit = cache_hit;
}

void RequestRegistry::SetCompileInfo(
    uint64_t query_id, std::vector<std::pair<std::string, double>> phases,
    double memo_groups, double memo_exprs, bool budget_exhausted,
    bool beam_used) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  RequestState& r = it->second;
  r.compile_phases = std::move(phases);
  r.memo_groups = memo_groups;
  r.memo_exprs = memo_exprs;
  r.budget_exhausted = budget_exhausted;
  r.beam_used = beam_used;
}

void RequestRegistry::BeginQueue(uint64_t query_id,
                                 std::string resource_class) {
  double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  it->second.phase = RequestPhase::kQueued;
  it->second.resource_class = std::move(resource_class);
  it->second.queue_start_seconds = now;
}

void RequestRegistry::Admit(uint64_t query_id) {
  double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  it->second.phase = RequestPhase::kAdmitted;
  it->second.admit_seconds = now;
}

void RequestRegistry::MarkResultCacheHit(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  it->second.result_cache_hit = true;
}

void RequestRegistry::BeginExecute(uint64_t query_id,
                                   std::vector<RequestStepState> steps) {
  double now = NowSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  RequestState& r = it->second;
  r.phase = RequestPhase::kExecuting;
  r.exec_start_seconds = now;
  r.steps = std::move(steps);
  r.total_steps = static_cast<int>(r.steps.size());
}

void RequestRegistry::BeginStep(uint64_t query_id, int step_index,
                                int retries) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  RequestState& r = it->second;
  if (step_index < 0 || step_index >= static_cast<int>(r.steps.size())) return;
  RequestStepState& s = r.steps[static_cast<size_t>(step_index)];
  s.status = "running";
  s.retries = retries;
  // A retry starts over: the partial temp table was dropped, so the live
  // progress counts restart from zero too.
  s.rows_moved = 0;
  s.bytes_moved = 0;
  r.current_step = step_index;
}

void RequestRegistry::StepProgress(uint64_t query_id, int step_index,
                                   double rows_delta, double bytes_delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  RequestState& r = it->second;
  if (step_index < 0 || step_index >= static_cast<int>(r.steps.size())) return;
  RequestStepState& s = r.steps[static_cast<size_t>(step_index)];
  s.rows_moved += rows_delta;
  s.bytes_moved += bytes_delta;
}

void RequestRegistry::EndStep(uint64_t query_id,
                              const RequestStepState& final_state) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  RequestState& r = it->second;
  int index = final_state.index;
  if (index < 0 || index >= static_cast<int>(r.steps.size())) return;
  RequestStepState& s = r.steps[static_cast<size_t>(index)];
  std::string kind = s.kind, move_kind = s.move_kind;
  std::string dest = s.dest_table, sql = s.sql;
  s = final_state;
  // Keep the skeleton's descriptive fields if the caller left them empty.
  if (s.kind.empty()) s.kind = std::move(kind);
  if (s.move_kind.empty()) s.move_kind = std::move(move_kind);
  if (s.dest_table.empty()) s.dest_table = std::move(dest);
  if (s.sql.empty()) s.sql = std::move(sql);
  s.status = "complete";
}

void RequestRegistry::Retire(uint64_t query_id, RequestPhase phase,
                             std::string error) {
  auto it = active_.find(query_id);
  if (it == active_.end()) return;
  RequestState r = std::move(it->second);
  active_.erase(it);
  r.phase = phase;
  r.end_seconds = NowSeconds();
  r.error = std::move(error);
  if (phase == RequestPhase::kFailed || phase == RequestPhase::kCancelled) {
    // The step that was running when the request died is the failed one.
    for (RequestStepState& s : r.steps) {
      if (s.status == "running") s.status = "failed";
    }
  }
  finished_.push_back(std::move(r));
  EvictLocked();
}

void RequestRegistry::Complete(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Retire(query_id, RequestPhase::kComplete, "");
}

void RequestRegistry::Fail(uint64_t query_id, std::string error) {
  std::lock_guard<std::mutex> lock(mu_);
  Retire(query_id, RequestPhase::kFailed, std::move(error));
}

void RequestRegistry::Cancel(uint64_t query_id, std::string error) {
  std::lock_guard<std::mutex> lock(mu_);
  Retire(query_id, RequestPhase::kCancelled, std::move(error));
}

std::vector<RequestState> RequestRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestState> out;
  out.reserve(active_.size() + finished_.size());
  for (const auto& [id, r] : active_) out.push_back(r);
  std::vector<const RequestState*> done;
  done.reserve(finished_.size());
  for (const RequestState& r : finished_) done.push_back(&r);
  std::sort(done.begin(), done.end(),
            [](const RequestState* a, const RequestState* b) {
              return a->query_id < b->query_id;
            });
  for (const RequestState* r : done) out.push_back(*r);
  return out;
}

size_t RequestRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_.size();
}

size_t RequestRegistry::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_.size();
}

size_t RequestRegistry::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

void RequestRegistry::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<size_t>(1, capacity);
  EvictLocked();
}

void RequestRegistry::EvictLocked() {
  while (finished_.size() > ring_capacity_) finished_.pop_front();
}

void RequestRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  finished_.clear();
}

}  // namespace pdw::obs
