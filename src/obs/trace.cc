#include "obs/trace.h"

#include <chrono>
#include <ctime>
#include <fstream>

#include "common/string_util.h"
#include "obs/format.h"

namespace pdw::obs {

namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace

Tracer::Tracer() : epoch_(WallSeconds()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  open_.clear();
  epoch_ = WallSeconds();
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<TraceRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

int Tracer::BeginSpan(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int>& stack = open_[std::this_thread::get_id()];
  auto tid_it = thread_index_
                    .emplace(std::this_thread::get_id(),
                             static_cast<int>(thread_index_.size()))
                    .first;
  TraceRecord rec;
  rec.id = static_cast<int>(records_.size());
  rec.parent = stack.empty() ? -1 : stack.back();
  rec.depth = static_cast<int>(stack.size());
  rec.tid = tid_it->second;
  rec.name = std::move(name);
  rec.start_seconds = WallSeconds() - epoch_;
  stack.push_back(rec.id);
  records_.push_back(std::move(rec));
  return records_.back().id;
}

void Tracer::EndSpan(int id, double wall_seconds, double cpu_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(records_.size())) return;
  records_[static_cast<size_t>(id)].wall_seconds = wall_seconds;
  records_[static_cast<size_t>(id)].cpu_seconds = cpu_seconds;
  std::vector<int>& stack = open_[std::this_thread::get_id()];
  while (!stack.empty() && stack.back() >= id) stack.pop_back();
}

void Tracer::Annotate(int id, const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(records_.size())) return;
  records_[static_cast<size_t>(id)].attrs.emplace_back(key, std::move(value));
}

std::string Tracer::ToText() const {
  std::vector<TraceRecord> recs = Snapshot();
  std::string out;
  for (const TraceRecord& r : recs) {
    out.append(static_cast<size_t>(r.depth) * 2, ' ');
    out += r.name;
    out += StringFormat("  wall=%s cpu=%s", FormatSeconds(r.wall_seconds).c_str(),
                        FormatSeconds(r.cpu_seconds).c_str());
    for (const auto& [k, v] : r.attrs) {
      out += " " + k + "=" + v;
    }
    out += "\n";
  }
  return out;
}

namespace {

void SpanToJson(const std::vector<TraceRecord>& recs,
                const std::vector<std::vector<int>>& children, int id,
                std::string* out) {
  const TraceRecord& r = recs[static_cast<size_t>(id)];
  *out += "{\"name\":\"" + JsonEscape(r.name) + "\"";
  *out += ",\"start_seconds\":" + JsonNumber(r.start_seconds);
  *out += ",\"wall_seconds\":" + JsonNumber(r.wall_seconds);
  *out += ",\"cpu_seconds\":" + JsonNumber(r.cpu_seconds);
  if (!r.attrs.empty()) {
    *out += ",\"attrs\":{";
    for (size_t i = 0; i < r.attrs.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "\"" + JsonEscape(r.attrs[i].first) + "\":\"" +
              JsonEscape(r.attrs[i].second) + "\"";
    }
    *out += "}";
  }
  const std::vector<int>& kids = children[static_cast<size_t>(id)];
  if (!kids.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) *out += ",";
      SpanToJson(recs, children, kids[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  std::vector<TraceRecord> recs = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += event;
  };
  int next_flow_id = 1;
  for (const TraceRecord& r : recs) {
    double ts_us = r.start_seconds * 1e6;
    std::string ev = "{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                     JsonNumber(static_cast<double>(r.tid)) +
                     ",\"name\":\"" + JsonEscape(r.name) + "\"" +
                     ",\"ts\":" + JsonNumber(ts_us) +
                     ",\"dur\":" + JsonNumber(r.wall_seconds * 1e6) +
                     ",\"args\":{\"cpu_seconds\":" + JsonNumber(r.cpu_seconds);
    for (const auto& [k, v] : r.attrs) {
      ev += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    ev += "}}";
    emit(ev);
    // A parent on another thread isn't visible through the track's time
    // nesting; stitch the link with a flow arrow from the parent's start
    // to this span's start.
    if (r.parent >= 0 && r.parent < static_cast<int>(recs.size())) {
      const TraceRecord& p = recs[static_cast<size_t>(r.parent)];
      if (p.tid != r.tid) {
        int flow = next_flow_id++;
        emit("{\"ph\":\"s\",\"pid\":1,\"tid\":" +
             JsonNumber(static_cast<double>(p.tid)) +
             ",\"name\":\"span\",\"id\":" + JsonNumber(flow) +
             ",\"ts\":" + JsonNumber(p.start_seconds * 1e6) + "}");
        emit("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" +
             JsonNumber(static_cast<double>(r.tid)) +
             ",\"name\":\"span\",\"id\":" + JsonNumber(flow) +
             ",\"ts\":" + JsonNumber(ts_us) + "}");
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  file << ToChromeJson();
  file.close();
  if (!file) {
    return Status::Internal("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

std::string Tracer::ToJson() const {
  std::vector<TraceRecord> recs = Snapshot();
  std::vector<std::vector<int>> children(recs.size());
  std::vector<int> roots;
  for (const TraceRecord& r : recs) {
    if (r.parent >= 0) {
      children[static_cast<size_t>(r.parent)].push_back(r.id);
    } else {
      roots.push_back(r.id);
    }
  }
  std::string out = "[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ",";
    SpanToJson(recs, children, roots[i], &out);
  }
  out += "]";
  return out;
}

TraceSpan::TraceSpan(std::string name, Tracer* tracer) : tracer_(tracer) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  wall_start_ = WallSeconds();
  cpu_start_ = ThreadCpuSeconds();
  id_ = tracer_->BeginSpan(std::move(name));
}

void TraceSpan::AddAttr(const std::string& key, std::string value) {
  if (id_ < 0) return;
  tracer_->Annotate(id_, key, std::move(value));
}

void TraceSpan::AddAttr(const std::string& key, double value) {
  if (id_ < 0) return;
  tracer_->Annotate(id_, key, FormatCount(value));
}

void TraceSpan::End() {
  if (id_ < 0) return;
  tracer_->EndSpan(id_, WallSeconds() - wall_start_,
                   ThreadCpuSeconds() - cpu_start_);
  id_ = -1;
}

}  // namespace pdw::obs
