#ifndef PDW_OBS_METRICS_H_
#define PDW_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pdw::obs {

/// Point-in-time copy of one fixed-bucket histogram. `bounds` are the
/// inclusive upper bounds of the first N buckets; an implicit overflow
/// bucket catches everything above the last bound, so `counts` has
/// `bounds.size() + 1` entries.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }

  /// Estimated value at quantile `q` in [0, 1] (0 when empty): finds the
  /// bucket holding the q-th observation and interpolates linearly inside
  /// it, clamping bucket edges to the observed [min, max] so open-ended
  /// buckets (below the first bound, the overflow bucket) stay finite.
  double Quantile(double q) const;
};

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::string ToJson() const;
  std::string ToText() const;
};

/// Process-wide named metrics: monotonically increasing counters, last-value
/// gauges, and fixed-bucket histograms. Metric names are dot-separated
/// lowercase paths, `<subsystem>.<entity>.<unit>` — e.g. `optimizer.groups`,
/// `dms.reader.bytes`, `executor.rows_out`.
///
/// All operations are thread-safe; instrumented code uses `Global()` while
/// tests construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  static MetricsRegistry& Global();

  /// Adds `delta` to a counter, creating it at zero first.
  void Count(const std::string& name, double delta = 1);
  /// Sets a gauge to `value`.
  void SetGauge(const std::string& name, double value);

  /// Declares a histogram with explicit bucket upper bounds (sorted
  /// ascending). Observing an undeclared histogram auto-declares it with
  /// decade buckets 1, 10, 100, ... 1e9.
  void DefineHistogram(const std::string& name, std::vector<double> bounds);
  void Observe(const std::string& name, double value);

  /// Current value of a counter / gauge (0 when absent).
  double counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

}  // namespace pdw::obs

#endif  // PDW_OBS_METRICS_H_
