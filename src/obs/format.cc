#include "obs/format.h"

#include <cmath>

#include "common/string_util.h"

namespace pdw::obs {

std::string FormatBytes(double bytes) {
  double v = std::fabs(bytes);
  const char* unit = "B";
  double scale = 1;
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    unit = "GB";
    scale = 1024.0 * 1024.0 * 1024.0;
  } else if (v >= 1024.0 * 1024.0) {
    unit = "MB";
    scale = 1024.0 * 1024.0;
  } else if (v >= 1024.0) {
    unit = "KB";
    scale = 1024.0;
  } else {
    return StringFormat("%.0fB", bytes);
  }
  return StringFormat("%.2f%s", bytes / scale, unit);
}

std::string FormatSeconds(double seconds) {
  double v = std::fabs(seconds);
  if (v >= 1.0) return StringFormat("%.3fs", seconds);
  if (v >= 1e-3) return StringFormat("%.2fms", seconds * 1e3);
  if (v >= 1e-6) return StringFormat("%.2fus", seconds * 1e6);
  if (v > 0) return StringFormat("%.0fns", seconds * 1e9);
  return "0s";
}

std::string FormatCount(double count) {
  if (std::fabs(count) >= 1e7) return StringFormat("%.3g", count);
  if (count == std::floor(count)) {
    return StringFormat("%lld", static_cast<long long>(count));
  }
  return StringFormat("%.2f", count);
}

std::string FormatComponent(const char* name, double bytes, double seconds) {
  return StringFormat("%s{%s %s}", name, FormatBytes(bytes).c_str(),
                      FormatSeconds(seconds).c_str());
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return StringFormat("%lld", static_cast<long long>(value));
  }
  return StringFormat("%.9g", value);
}

}  // namespace pdw::obs
