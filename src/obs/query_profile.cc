#include "obs/query_profile.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "obs/format.h"

namespace pdw::obs {

double StepProfile::MisestimateFactor() const {
  double est = std::max(1.0, estimated_rows);
  double act = std::max(1.0, actual_rows);
  return std::max(est / act, act / est);
}

std::string QueryProfile::ToText(double misestimate_threshold) const {
  std::string out;
  out += "EXPLAIN ANALYZE";
  if (query_id > 0) {
    out += StringFormat(" [query %llu]",
                        static_cast<unsigned long long>(query_id));
  }
  if (!sql.empty()) out += " " + sql;
  out += "\n";

  if (!compile_phases.empty()) {
    out += "compile:";
    for (const PhaseProfile& p : compile_phases) {
      out += " " + p.name + "=" + FormatSeconds(p.seconds);
    }
    out += "  total=" + FormatSeconds(compile_seconds);
    if (cache_hit) out += "  [plan cache hit]";
    out += "\n";
  }
  out += StringFormat(
      "optimizer: groups=%s options=%s kept=%s pruned=%s enforcers=%s "
      "memo_groups=%s memo_exprs=%s\n",
      FormatCount(optimizer.groups).c_str(),
      FormatCount(optimizer.options_considered).c_str(),
      FormatCount(optimizer.options_kept).c_str(),
      FormatCount(optimizer.options_pruned).c_str(),
      FormatCount(optimizer.enforcers_inserted).c_str(),
      FormatCount(optimizer.memo_groups).c_str(),
      FormatCount(optimizer.memo_exprs).c_str());
  if (optimizer.budget_exhausted) {
    out += "WARNING: join enumeration degraded (expression budget / "
           "max_dp_relations)";
    out += optimizer.beam_used ? " — beam search used\n"
                               : " — single seeded join order\n";
  }

  for (const StepProfile& s : steps) {
    out += StringFormat("DSQL step %d: %s", s.index, s.kind.c_str());
    if (!s.move_kind.empty()) out += " " + s.move_kind;
    if (!s.dest_table.empty()) out += " -> " + s.dest_table;
    if (s.retries > 0) out += StringFormat("  [retries=%d]", s.retries);
    if (!s.shared_role.empty()) {
      out += "  [shared: " + s.shared_role;
      if (s.shared_saved_bytes > 0) {
        out += StringFormat(" saved=%s", FormatBytes(s.shared_saved_bytes).c_str());
      }
      out += "]";
    }
    out += "\n";
    out += StringFormat("  modeled cost %.6f   measured %s\n",
                        s.estimated_cost,
                        FormatSeconds(s.measured_seconds).c_str());
    out += StringFormat("  est. rows %s   actual rows %s",
                        FormatCount(s.estimated_rows).c_str(),
                        FormatCount(s.actual_rows).c_str());
    double factor = s.MisestimateFactor();
    if (factor >= misestimate_threshold) {
      out += StringFormat("   [MISESTIMATE %.0fx]", factor);
    }
    out += "\n";
    if (s.kind == "DMS") {
      out += "  dms: " + FormatComponent("reader", s.reader.bytes,
                                         s.reader.seconds);
      out += " " + FormatComponent("network", s.network.bytes,
                                   s.network.seconds);
      out += " " + FormatComponent("writer", s.writer.bytes,
                                   s.writer.seconds);
      out += " " + FormatComponent("bulkcopy", s.bulkcopy.bytes,
                                   s.bulkcopy.seconds);
      out += StringFormat(" rows_moved=%s\n",
                          FormatCount(s.rows_moved).c_str());
      if (s.preagg) {
        double rows_in = s.preagg_rows_in_actual > 0 ? s.preagg_rows_in_actual
                                                     : s.preagg_rows_in;
        double rows_out = s.rows_moved > 0 ? s.rows_moved : s.estimated_rows;
        out += StringFormat("  preagg: rows_in=%s rows_out=%s reduction=%.1fx\n",
                            FormatCount(rows_in).c_str(),
                            FormatCount(rows_out).c_str(),
                            rows_in / std::max(1.0, rows_out));
      }
    }
    if (!s.node_seconds.empty()) {
      out += "  nodes:";
      for (const auto& [node, seconds] : s.node_seconds) {
        out += StringFormat(" n%d=%s", node, FormatSeconds(seconds).c_str());
      }
      out += "\n";
    }
    if (!s.operators.empty()) {
      out += "  operators (actuals summed over nodes):\n";
      for (const OperatorProfile& op : s.operators) {
        out.append(4 + static_cast<size_t>(op.depth) * 2, ' ');
        out += StringFormat("%s  rows=%s time=%s nodes=%d", op.name.c_str(),
                            FormatCount(op.actual_rows).c_str(),
                            FormatSeconds(op.seconds).c_str(), op.nodes);
        if (op.batches > 0) {
          out += StringFormat(" batches=%s morsels=%s",
                              FormatCount(op.batches).c_str(),
                              FormatCount(op.morsels).c_str());
        }
        if (op.selectivity >= 0) {
          out += StringFormat(" sel=%.3f", op.selectivity);
        }
        out += "\n";
      }
    }
    if (!s.sql.empty()) out += "  " + s.sql + "\n";
  }
  out += StringFormat("total: modeled cost %.6f   measured %s\n", modeled_cost,
                      FormatSeconds(measured_seconds).c_str());
  return out;
}

namespace {

std::string ComponentJson(const char* name, const ComponentProfile& c) {
  return StringFormat("\"%s\":{\"bytes\":%s,\"seconds\":%s}", name,
                      JsonNumber(c.bytes).c_str(),
                      JsonNumber(c.seconds).c_str());
}

}  // namespace

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  out += "\"query_id\":" + JsonNumber(static_cast<double>(query_id));
  out += ",\"sql\":\"" + JsonEscape(sql) + "\"";
  out += ",\"compile_seconds\":" + JsonNumber(compile_seconds);
  out += ",\"modeled_cost\":" + JsonNumber(modeled_cost);
  out += ",\"measured_seconds\":" + JsonNumber(measured_seconds);
  out += std::string(",\"cache_hit\":") + (cache_hit ? "true" : "false");

  out += ",\"compile_phases\":{";
  for (size_t i = 0; i < compile_phases.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(compile_phases[i].name) +
           "\":" + JsonNumber(compile_phases[i].seconds);
  }
  out += "}";

  out += ",\"optimizer\":{";
  out += "\"groups\":" + JsonNumber(optimizer.groups);
  out += ",\"options_considered\":" + JsonNumber(optimizer.options_considered);
  out += ",\"options_kept\":" + JsonNumber(optimizer.options_kept);
  out += ",\"options_pruned\":" + JsonNumber(optimizer.options_pruned);
  out += ",\"enforcers_inserted\":" + JsonNumber(optimizer.enforcers_inserted);
  out += ",\"memo_groups\":" + JsonNumber(optimizer.memo_groups);
  out += ",\"memo_exprs\":" + JsonNumber(optimizer.memo_exprs);
  out += std::string(",\"budget_exhausted\":") +
         (optimizer.budget_exhausted ? "true" : "false");
  out += std::string(",\"beam_used\":") + (optimizer.beam_used ? "true" : "false");
  out += "}";

  out += ",\"steps\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    const StepProfile& s = steps[i];
    if (i > 0) out += ",";
    out += "{\"index\":" + JsonNumber(s.index);
    out += ",\"kind\":\"" + JsonEscape(s.kind) + "\"";
    if (!s.move_kind.empty()) {
      out += ",\"move_kind\":\"" + JsonEscape(s.move_kind) + "\"";
    }
    if (!s.dest_table.empty()) {
      out += ",\"dest_table\":\"" + JsonEscape(s.dest_table) + "\"";
    }
    out += ",\"estimated_rows\":" + JsonNumber(s.estimated_rows);
    out += ",\"actual_rows\":" + JsonNumber(s.actual_rows);
    out += ",\"estimated_cost\":" + JsonNumber(s.estimated_cost);
    out += ",\"measured_seconds\":" + JsonNumber(s.measured_seconds);
    out += ",\"retries\":" + JsonNumber(s.retries);
    if (!s.shared_role.empty()) {
      out += ",\"shared_role\":\"" + JsonEscape(s.shared_role) + "\"";
      out += ",\"shared_saved_bytes\":" + JsonNumber(s.shared_saved_bytes);
    }
    out += ",\"misestimate_factor\":" + JsonNumber(s.MisestimateFactor());
    out += ",\"rows_moved\":" + JsonNumber(s.rows_moved);
    out += ",\"dms\":{" + ComponentJson("reader", s.reader) + "," +
           ComponentJson("network", s.network) + "," +
           ComponentJson("writer", s.writer) + "," +
           ComponentJson("bulkcopy", s.bulkcopy) + "}";
    if (s.preagg) {
      double rows_in = s.preagg_rows_in_actual > 0 ? s.preagg_rows_in_actual
                                                   : s.preagg_rows_in;
      double rows_out = s.rows_moved > 0 ? s.rows_moved : s.estimated_rows;
      out += ",\"preagg\":{\"rows_in\":" + JsonNumber(rows_in);
      out += ",\"rows_in_estimated\":" + JsonNumber(s.preagg_rows_in);
      out += ",\"rows_out\":" + JsonNumber(rows_out);
      out += ",\"reduction\":" + JsonNumber(rows_in / std::max(1.0, rows_out));
      out += "}";
    }
    out += ",\"node_seconds\":[";
    for (size_t j = 0; j < s.node_seconds.size(); ++j) {
      if (j > 0) out += ",";
      out += "{\"node\":" + JsonNumber(s.node_seconds[j].first) +
             ",\"seconds\":" + JsonNumber(s.node_seconds[j].second) + "}";
    }
    out += "]";
    out += ",\"operators\":[";
    for (size_t j = 0; j < s.operators.size(); ++j) {
      const OperatorProfile& op = s.operators[j];
      if (j > 0) out += ",";
      out += "{\"depth\":" + JsonNumber(op.depth);
      out += ",\"name\":\"" + JsonEscape(op.name) + "\"";
      out += ",\"estimated_rows\":" + JsonNumber(op.estimated_rows);
      out += ",\"actual_rows\":" + JsonNumber(op.actual_rows);
      out += ",\"seconds\":" + JsonNumber(op.seconds);
      out += ",\"nodes\":" + JsonNumber(op.nodes);
      out += ",\"batches\":" + JsonNumber(op.batches);
      out += ",\"morsels\":" + JsonNumber(op.morsels);
      if (op.selectivity >= 0) {
        out += ",\"selectivity\":" + JsonNumber(op.selectivity);
      }
      out += "}";
    }
    out += "]";
    out += ",\"sql\":\"" + JsonEscape(s.sql) + "\"";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace pdw::obs
