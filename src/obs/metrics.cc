#include "obs/metrics.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/format.h"

namespace pdw::obs {

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(count);
  double cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double c = static_cast<double>(counts[i]);
    if (c > 0 && cum + c >= target) {
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo) return lo;
      double frac = std::min(1.0, std::max(0.0, (target - cum) / c));
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Count(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::DefineHistogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot& h = histograms_[name];
  h = HistogramSnapshot{};
  h.bounds = std::move(bounds);
  std::sort(h.bounds.begin(), h.bounds.end());
  h.counts.assign(h.bounds.size() + 1, 0);
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot h;
    for (double b = 1; b <= 1e9; b *= 10) h.bounds.push_back(b);
    h.counts.assign(h.bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  HistogramSnapshot& h = it->second;
  size_t bucket =
      static_cast<size_t>(std::lower_bound(h.bounds.begin(), h.bounds.end(),
                                           value) -
                          h.bounds.begin());
  h.counts[bucket] += 1;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.count += 1;
  h.sum += value;
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histograms = histograms_;
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonNumber(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" + JsonNumber(
               static_cast<double>(h.count)) +
           ",\"sum\":" + JsonNumber(h.sum) + ",\"min\":" + JsonNumber(h.min) +
           ",\"max\":" + JsonNumber(h.max) +
           ",\"mean\":" + JsonNumber(h.Mean()) +
           ",\"p50\":" + JsonNumber(h.Quantile(0.50)) +
           ",\"p95\":" + JsonNumber(h.Quantile(0.95)) +
           ",\"p99\":" + JsonNumber(h.Quantile(0.99)) + ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonNumber(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ",";
      out += JsonNumber(static_cast<double>(h.counts[i]));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " = " + FormatCount(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " = " + FormatCount(value) + " (gauge)\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name +
           StringFormat(
               " = {count=%llu sum=%s min=%s max=%s mean=%s p50=%s p95=%s "
               "p99=%s}\n",
               static_cast<unsigned long long>(h.count),
               FormatCount(h.sum).c_str(), FormatCount(h.min).c_str(),
               FormatCount(h.max).c_str(), FormatCount(h.Mean()).c_str(),
               FormatCount(h.Quantile(0.50)).c_str(),
               FormatCount(h.Quantile(0.95)).c_str(),
               FormatCount(h.Quantile(0.99)).c_str());
  }
  return out;
}

}  // namespace pdw::obs
