#ifndef PDW_OBS_QUERY_PROFILE_H_
#define PDW_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pdw::obs {

/// Per-operator actuals from one plan execution (pre-order over the plan
/// tree; seconds are inclusive of children, PostgreSQL-EXPLAIN-ANALYZE
/// style). For distributed steps the values are summed over the nodes that
/// ran the step's SQL.
struct OperatorProfile {
  int depth = 0;
  std::string name;
  double estimated_rows = 0;  ///< Per-node compile-time estimate (summed).
  double actual_rows = 0;     ///< Rows the operator emitted (summed).
  double seconds = 0;         ///< Wall time, inclusive of children (summed).
  int nodes = 0;              ///< How many node executions were aggregated.
  /// Batch-engine counters (zero under the row engine, which has neither
  /// batches nor morsels): column batches the operator emitted, and morsel
  /// tasks its pipeline was split into on the node-local worker pool.
  double batches = 0;
  double morsels = 0;
  /// Output/input row ratio of filtering operators (filters, join probes);
  /// negative = not applicable for this operator.
  double selectivity = -1;
};

/// One metered DMS component of a step (bytes processed, wall seconds).
struct ComponentProfile {
  double bytes = 0;
  double seconds = 0;
};

/// Estimated-vs-actual profile of one DSQL step.
struct StepProfile {
  int index = 0;
  std::string kind;       ///< "DMS" or "RETURN".
  std::string move_kind;  ///< DMS operation name (DMS steps only).
  std::string dest_table;
  std::string sql;

  double estimated_rows = 0;   ///< PDW optimizer's global estimate.
  double actual_rows = 0;      ///< Rows moved (DMS) / returned (RETURN).
  double estimated_cost = 0;   ///< Modeled DMS cost of the move.
  double measured_seconds = 0; ///< Wall time of the successful attempt.
  /// Transient-failure retries this step needed before succeeding (0 on
  /// the common path); retried attempts' partial temp tables were dropped.
  int retries = 0;

  double rows_moved = 0;
  ComponentProfile reader, network, writer, bulkcopy;

  /// Pre-aggregation telemetry (PR 9): set when the step's source SQL is a
  /// partial aggregate, so the move ships pre-aggregated rows. rows_out is
  /// rows_moved; the reduction factor is rows_in / rows_out.
  bool preagg = false;
  double preagg_rows_in = 0;         ///< Compile-time input-row estimate.
  double preagg_rows_in_actual = 0;  ///< Measured (when actuals collected).

  /// Sub-plan sharing: "leader" (published to the shared-step registry),
  /// "follower" (adopted another query's temp; measured_seconds is then the
  /// rendezvous wait and shared_saved_bytes the skipped DMS movement), or
  /// empty for a privately executed step.
  std::string shared_role;
  double shared_saved_bytes = 0;

  /// (node, seconds) wall time of the step's SQL on each node that ran it
  /// (control node = highest id). Under pooled execution these overlap, so
  /// their sum exceeds measured_seconds; the spread shows skew.
  std::vector<std::pair<int, double>> node_seconds;

  std::vector<OperatorProfile> operators;

  /// |estimated / actual| ratio, >= 1, using max(1, x) floors; the
  /// cardinality-feedback signal.
  double MisestimateFactor() const;
};

/// One timed compilation phase (Fig. 2 component).
struct PhaseProfile {
  std::string name;
  double seconds = 0;
};

/// Search statistics of the PDW bottom-up enumeration.
struct OptimizerProfile {
  double groups = 0;
  double options_considered = 0;
  double options_kept = 0;
  double options_pruned = 0;
  double enforcers_inserted = 0;
  /// Serial-memo search-space size (groups / group expressions).
  double memo_groups = 0;
  double memo_exprs = 0;
  /// Join enumeration was degraded (budget hit or too many relations);
  /// ToText then emits a WARNING line so the cliff is never silent.
  bool budget_exhausted = false;
  /// The degradation ran as a beam search rather than a single seeded
  /// left-deep order.
  bool beam_used = false;
};

/// The machine-readable result of EXPLAIN ANALYZE: every DSQL step with
/// modeled cost vs measured seconds, estimated vs actual rows, and
/// per-component DMS bytes, plus compile-phase timings and optimizer search
/// counters. Pure data — benches serialize it to JSON, the appliance
/// renders it as text.
struct QueryProfile {
  /// Appliance-wide monotonically unique request id (0 = not assigned);
  /// joins this profile with sys.dm_pdw_exec_requests rows and trace spans.
  uint64_t query_id = 0;
  std::string sql;
  std::vector<PhaseProfile> compile_phases;
  OptimizerProfile optimizer;
  std::vector<StepProfile> steps;
  double modeled_cost = 0;      ///< Optimizer objective for the whole plan.
  double measured_seconds = 0;  ///< Wall time of DSQL execution.
  double compile_seconds = 0;   ///< Sum of compile phases.
  /// True when the DSQL plan came from the plan cache (compile_phases then
  /// holds a single plan_cache_lookup entry instead of pipeline phases).
  bool cache_hit = false;

  /// Estimates diverging from actuals by at least `threshold` x are flagged
  /// in ToText with a [MISESTIMATE ..x] marker.
  std::string ToText(double misestimate_threshold = 10.0) const;
  std::string ToJson() const;
};

}  // namespace pdw::obs

#endif  // PDW_OBS_QUERY_PROFILE_H_
