#ifndef PDW_OBS_REQUEST_REGISTRY_H_
#define PDW_OBS_REQUEST_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdw::obs {

/// Lifecycle of one request through the appliance, mirroring the status
/// column of sys.dm_pdw_exec_requests: queued on submit *and again* while
/// waiting in the workload manager's admission queue, compiling while the
/// control node builds (or cache-loads) the DSQL plan, admitted once a
/// concurrency slot of its resource class is granted, executing while
/// steps run, then complete, failed, or cancelled.
enum class RequestPhase {
  kQueued,
  kCompiling,
  kAdmitted,
  kExecuting,
  kComplete,
  kFailed,
  kCancelled,
};

/// True for the phases a retired request can land in (complete / failed /
/// cancelled) — everything the DMV shows from the finished ring.
bool IsTerminalPhase(RequestPhase phase);

const char* RequestPhaseName(RequestPhase phase);

/// Live state of one DSQL step inside a request ("pending" -> "running" ->
/// "complete"/"failed"). rows/bytes advance *during* a DMS move via the
/// pipeline's progress feed, then snap to the metered totals on completion.
struct RequestStepState {
  int index = 0;
  std::string kind;        ///< "DMS" or "RETURN".
  std::string move_kind;   ///< DMS operation name (DMS steps only).
  std::string dest_table;
  std::string sql;
  std::string status = "pending";
  int retries = 0;
  double rows_moved = 0;
  double bytes_moved = 0;
  double seconds = 0;      ///< Wall time of the successful attempt.
  /// Per-component DMS meters of the successful attempt (bytes, seconds),
  /// indexed by kDmsComponentNames order: reader, network, writer, bulkcopy.
  double component_bytes[4] = {0, 0, 0, 0};
  double component_seconds[4] = {0, 0, 0, 0};
  /// Sub-plan sharing: "leader" (this step's temp was published to the
  /// shared-step registry), "follower" (the step consumed another query's
  /// temp instead of executing), or empty for a privately executed step.
  std::string shared_role;
  /// Follower only: DMS bytes the adopted step's leader moved — the
  /// movement this request skipped.
  double saved_bytes = 0;
};

inline constexpr const char* kDmsComponentNames[4] = {"reader", "network",
                                                      "writer", "bulkcopy"};

/// Everything sys.dm_pdw_exec_requests knows about one request. Timestamps
/// are seconds since the owning registry's epoch (its construction);
/// negative means "hasn't happened yet".
struct RequestState {
  uint64_t query_id = 0;
  /// Session the request belongs to (Appliance::Connect handle; 1 is the
  /// implicit default session behind bare Appliance::Run).
  uint64_t session_id = 0;
  std::string sql;        ///< Normalized SQL text.
  std::string engine;     ///< Local execution engine label ("row"/"batch").
  RequestPhase phase = RequestPhase::kQueued;
  /// Workload-manager resource class ("small"/"medium"/"large"), set when
  /// the request enters admission; empty for DMV/explain-only requests
  /// that bypass the workload manager.
  std::string resource_class;
  double submit_seconds = 0;
  double compile_start_seconds = -1;
  double exec_start_seconds = -1;
  double end_seconds = -1;
  /// Admission-queue bracket: wait starts when compilation classified the
  /// request, ends when a concurrency slot was granted (-1 = not yet).
  double queue_start_seconds = -1;
  double admit_seconds = -1;
  bool cache_hit = false;
  /// Served straight from the keyed result cache (no execution at all) —
  /// either an LRU hit or a coalesced wait on an identical in-flight query.
  bool result_cache_hit = false;
  /// Index of the step currently running (-1 before execution starts).
  int current_step = -1;
  int total_steps = 0;
  std::string error;
  std::vector<RequestStepState> steps;
  /// Compile-phase wall seconds in pipeline order (bind, normalize, memo,
  /// pdw_optimize, ...; a single plan_cache_lookup entry on cache hits).
  std::vector<std::pair<std::string, double>> compile_phases;
  /// Serial-memo search-space stats (restored from the cached plan's
  /// profile on cache hits, so they are populated either way).
  double memo_groups = 0;
  double memo_exprs = 0;
  bool budget_exhausted = false;  ///< Join enumeration was degraded.
  bool beam_used = false;         ///< Degradation ran as a beam search.

  /// Sums over steps — the "so far" view while executing.
  int TotalRetries() const;
  double RowsMoved() const;
  double BytesMoved() const;
};

/// Always-on, thread-safe registry of every request the appliance has run:
/// a map of in-flight requests plus a bounded ring of recently finished
/// ones (oldest evicted first), so DMV queries can see both what is running
/// *right now* and what just happened. One instance per appliance — the
/// control node's request table, not process state.
///
/// All methods are safe to call from any number of session threads plus
/// DMS pipeline workers concurrently; updates for unknown query ids are
/// ignored (the request may have been evicted).
class RequestRegistry {
 public:
  explicit RequestRegistry(size_t ring_capacity = 256);

  /// Seconds since this registry's epoch — the clock every timestamp in
  /// RequestState is expressed in.
  double NowSeconds() const;

  /// Admits a request in phase queued.
  void Register(uint64_t query_id, uint64_t session_id, std::string sql,
                std::string engine);

  void BeginCompile(uint64_t query_id);
  void EndCompile(uint64_t query_id, bool cache_hit);
  /// Attaches the compile's phase timings and memo search-space stats (the
  /// optimizer-observability columns of sys.dm_pdw_exec_requests).
  void SetCompileInfo(uint64_t query_id,
                      std::vector<std::pair<std::string, double>> phases,
                      double memo_groups, double memo_exprs,
                      bool budget_exhausted, bool beam_used);

  /// Transition back to queued while the request waits in the workload
  /// manager's admission queue of `resource_class`.
  void BeginQueue(uint64_t query_id, std::string resource_class);
  /// The workload manager granted a concurrency slot.
  void Admit(uint64_t query_id);
  /// The request was served straight from the result cache (terminal
  /// Complete follows); records the fact for the DMV's result_cache_hit.
  void MarkResultCacheHit(uint64_t query_id);

  /// Transition to executing with the plan's step skeleton (index/kind/
  /// move_kind/dest_table/sql filled, counters zero).
  void BeginExecute(uint64_t query_id, std::vector<RequestStepState> steps);

  /// Marks the step running and makes it the request's current step. Also
  /// used on retry re-entry; `retries` is the attempt count so far.
  void BeginStep(uint64_t query_id, int step_index, int retries);
  /// Live progress feed from the DMS pipeline: adds rows/bytes moved so far
  /// to the running step.
  void StepProgress(uint64_t query_id, int step_index, double rows_delta,
                    double bytes_delta);
  /// Finalizes a step with the metered totals of its successful attempt
  /// (replacing any live progress counts).
  void EndStep(uint64_t query_id, const RequestStepState& final_state);

  void Complete(uint64_t query_id);
  void Fail(uint64_t query_id, std::string error);
  /// Terminal phase for a client-cancelled request (kCancelled).
  void Cancel(uint64_t query_id, std::string error);

  /// Point-in-time copy of every known request, in-flight first, then the
  /// ring of finished ones, both in ascending query-id order.
  std::vector<RequestState> Snapshot() const;

  size_t active_count() const;
  size_t finished_count() const;
  size_t ring_capacity() const;
  /// Shrinks (or grows) the finished-requests ring, evicting oldest.
  void set_ring_capacity(size_t capacity);
  void Clear();

 private:
  /// Moves an active request into the finished ring. Caller holds mu_.
  void Retire(uint64_t query_id, RequestPhase phase, std::string error);
  void EvictLocked();

  mutable std::mutex mu_;
  double epoch_ = 0;  ///< steady_clock seconds at construction.
  size_t ring_capacity_;
  std::map<uint64_t, RequestState> active_;
  std::deque<RequestState> finished_;  ///< Oldest first.
};

}  // namespace pdw::obs

#endif  // PDW_OBS_REQUEST_REGISTRY_H_
