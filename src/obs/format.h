#ifndef PDW_OBS_FORMAT_H_
#define PDW_OBS_FORMAT_H_

#include <string>

namespace pdw::obs {

/// Human-readable byte count with a binary-prefix unit ("482B", "12.3KB",
/// "4.56MB"). All metric renderers (DMS, executor, optimizer) share this so
/// byte counts look identical everywhere.
std::string FormatBytes(double bytes);

/// Human-readable duration ("835ns", "1.24ms", "3.50s").
std::string FormatSeconds(double seconds);

/// Plain count with thousands kept readable ("1480", "1.25e+07" past 1e7).
std::string FormatCount(double count);

/// One metered component as "name{bytes seconds}" — the shared rendering of
/// a (bytes, seconds) pair used by DmsRunMetrics and the query profile.
std::string FormatComponent(const char* name, double bytes, double seconds);

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Formats a double as a JSON number (no trailing garbage, "0" for zero,
/// NaN/Inf mapped to 0 since JSON has no encoding for them).
std::string JsonNumber(double value);

}  // namespace pdw::obs

#endif  // PDW_OBS_FORMAT_H_
