#ifndef PDW_OBS_TRACE_H_
#define PDW_OBS_TRACE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pdw::obs {

/// One closed (or still-open) span as recorded by a Tracer. Spans form a
/// tree via `parent` (index into the tracer's record vector, -1 for roots);
/// nesting follows the per-thread stack of live TraceSpan objects.
struct TraceRecord {
  int id = 0;
  int parent = -1;
  int depth = 0;
  /// Small dense index of the recording thread (first thread seen = 0);
  /// the Chrome-trace tid, so each thread gets its own track.
  int tid = 0;
  std::string name;
  double start_seconds = 0;  ///< Relative to the tracer's epoch.
  double wall_seconds = 0;
  double cpu_seconds = 0;    ///< Thread CPU time consumed inside the span.
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Thread-safe sink for hierarchical trace spans. Disabled by default: a
/// disabled tracer makes TraceSpan construction a single relaxed atomic
/// load, so instrumentation can stay compiled into every pipeline layer
/// without measurable cost (the bench_fig2_pipeline overhead bound).
///
/// The process-wide instance (`Tracer::Global()`) is what the compiler,
/// DMS, and executor instrumentation write to; tests can use private
/// instances.
class Tracer {
 public:
  Tracer();

  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans (open spans keep their ids and will still
  /// close harmlessly — their EndSpan is ignored).
  void Clear();

  size_t size() const;
  std::vector<TraceRecord> Snapshot() const;

  /// Indented tree rendering, one line per span.
  std::string ToText() const;
  /// JSON: array of root spans, children nested recursively.
  std::string ToJson() const;
  /// Chrome-trace JSON (the chrome://tracing / Perfetto "traceEvents"
  /// format): every span becomes a complete ("X") event on its thread's
  /// track, with flow events stitching parent->child links that cross
  /// threads so a whole query reads as one flame graph.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path` (overwriting).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  friend class TraceSpan;

  /// Returns the new span's id, or -1 when disabled.
  int BeginSpan(std::string name);
  void EndSpan(int id, double wall_seconds, double cpu_seconds);
  void Annotate(int id, const std::string& key, std::string value);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  double epoch_ = 0;
  std::vector<TraceRecord> records_;
  /// Stack of open span ids per thread — gives each thread its own
  /// nesting chain while all spans land in one shared record vector.
  std::map<std::thread::id, std::vector<int>> open_;
  /// Dense per-thread index for TraceRecord::tid.
  std::map<std::thread::id, int> thread_index_;
};

/// RAII span: records wall and thread-CPU time between construction and
/// End()/destruction into a Tracer. No-op (and nearly free) when the tracer
/// is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, Tracer* tracer = &Tracer::Global());
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key-value attribute to the span (ignored when disabled).
  void AddAttr(const std::string& key, std::string value);
  void AddAttr(const std::string& key, double value);

  /// Closes the span early; idempotent.
  void End();

  bool active() const { return id_ >= 0; }

 private:
  Tracer* tracer_;
  int id_ = -1;
  double wall_start_ = 0;
  double cpu_start_ = 0;
};

}  // namespace pdw::obs

#endif  // PDW_OBS_TRACE_H_
