#include <gtest/gtest.h>

#include <memory>

#include "appliance/appliance.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

/// Shared miniature TPC-H appliance (4 nodes, scale 0.05) — loading it once
/// keeps the suite fast while every test still runs real distributed
/// execution.
class TpchApplianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    appliance_ = new Appliance(Topology{4});
    session_ = new Session(appliance_->Connect());
    ASSERT_TRUE(tpch::CreateTpchTables(appliance_).ok());
    tpch::TpchConfig cfg;
    cfg.scale = 0.05;
    ASSERT_TRUE(tpch::LoadTpch(appliance_, cfg).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete appliance_;
    appliance_ = nullptr;
  }

  void ExpectMatchesReference(const std::string& sql) {
    auto dist = session_->Run(sql);
    ASSERT_TRUE(dist.ok()) << sql << "\n" << dist.status().ToString();
    auto ref = appliance_->ExecuteReference(sql);
    ASSERT_TRUE(ref.ok()) << sql << "\n" << ref.status().ToString();
    EXPECT_EQ(dist->rows.size(), ref->rows.size()) << sql;
    EXPECT_TRUE(RowSetsEqual(dist->rows, ref->rows))
        << sql << "\nplan:\n"
        << dist->plan_text;
  }

  static Appliance* appliance_;
  static Session* session_;
};

Appliance* TpchApplianceTest::appliance_ = nullptr;
Session* TpchApplianceTest::session_ = nullptr;

TEST_F(TpchApplianceTest, LoadDistributesRows) {
  // Hash-distributed table: rows split across nodes, none duplicated.
  size_t total = 0;
  for (int n = 0; n < 4; ++n) {
    auto rows = appliance_->compute_node(n).GetRows("orders");
    ASSERT_TRUE(rows.ok());
    total += (*rows)->size();
    EXPECT_GT((*rows)->size(), 0u);
  }
  auto ref = appliance_->ExecuteReference("SELECT COUNT(*) AS c FROM orders");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(static_cast<int64_t>(total), ref->rows[0][0].int_value());
  // Replicated table: full copy everywhere.
  for (int n = 0; n < 4; ++n) {
    auto rows = appliance_->compute_node(n).GetRows("nation");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ((*rows)->size(), 25u);
  }
}

TEST_F(TpchApplianceTest, GlobalStatsAreMergedFromNodes) {
  auto table = appliance_->shell().GetTable("orders");
  ASSERT_TRUE(table.ok());
  auto ref = appliance_->ExecuteReference("SELECT COUNT(*) AS c FROM orders");
  double true_rows = static_cast<double>(ref.ValueOrDie().rows[0][0].int_value());
  EXPECT_DOUBLE_EQ((*table)->stats.row_count, true_rows);
  // Distribution column NDV is exact (disjoint merge).
  const ColumnStats* key_stats = (*table)->GetColumnStats("o_orderkey");
  ASSERT_NE(key_stats, nullptr);
  EXPECT_DOUBLE_EQ(key_stats->distinct_count, true_rows);
}

TEST_F(TpchApplianceTest, CollocatedJoinMovesNothing) {
  auto r = session_->Run(
      "SELECT o_orderkey, COUNT(*) AS lines FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey GROUP BY o_orderkey");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->dsql.steps.size(), 1u) << r->plan_text;  // Return only
  EXPECT_EQ(r->dms_metrics.rows_moved, 0);
}

TEST_F(TpchApplianceTest, SimpleProjectionFilters) {
  ExpectMatchesReference("SELECT c_custkey, c_name FROM customer WHERE "
                         "c_acctbal > 5000");
  ExpectMatchesReference("SELECT n_name FROM nation WHERE n_regionkey = 2");
  ExpectMatchesReference(
      "SELECT o_orderkey FROM orders WHERE o_orderdate BETWEEN "
      "DATE '1994-01-01' AND DATE '1994-12-31' AND o_totalprice > 100000");
}

TEST_F(TpchApplianceTest, JoinShapes) {
  ExpectMatchesReference(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 300000");
  ExpectMatchesReference(
      "SELECT s_name, n_name FROM supplier, nation "
      "WHERE s_nationkey = n_nationkey AND n_name = 'CANADA'");
  ExpectMatchesReference(
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
      "AND l_quantity > 49");
}

TEST_F(TpchApplianceTest, LeftOuterJoin) {
  ExpectMatchesReference(
      "SELECT c_custkey, o_orderkey FROM customer c LEFT JOIN orders o "
      "ON c_custkey = o_custkey AND o_totalprice > 400000");
}

TEST_F(TpchApplianceTest, SemiAntiJoins) {
  ExpectMatchesReference(
      "SELECT s_name FROM supplier WHERE s_suppkey IN "
      "(SELECT ps_suppkey FROM partsupp WHERE ps_availqty > 9000)");
  ExpectMatchesReference(
      "SELECT c_custkey FROM customer WHERE c_custkey NOT IN "
      "(SELECT o_custkey FROM orders)");
  ExpectMatchesReference(
      "SELECT p_partkey FROM part WHERE EXISTS "
      "(SELECT ps_partkey FROM partsupp WHERE ps_partkey = p_partkey "
      " AND ps_supplycost < 10)");
}

TEST_F(TpchApplianceTest, AggregationShapes) {
  ExpectMatchesReference("SELECT COUNT(*) AS c FROM lineitem");
  ExpectMatchesReference(
      "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s "
      "FROM orders GROUP BY o_custkey");
  ExpectMatchesReference(
      "SELECT l_returnflag, AVG(l_quantity) AS aq FROM lineitem "
      "GROUP BY l_returnflag");
  ExpectMatchesReference(
      "SELECT o_orderkey, COUNT(*) AS c FROM orders GROUP BY o_orderkey "
      "HAVING COUNT(*) > 0");
  ExpectMatchesReference("SELECT DISTINCT c_mktsegment FROM customer");
  ExpectMatchesReference(
      "SELECT COUNT(DISTINCT o_custkey) AS distinct_customers FROM orders");
}

TEST_F(TpchApplianceTest, OrderByAndTopN) {
  auto dist = session_->Run(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 10");
  ASSERT_TRUE(dist.ok());
  auto ref = appliance_->ExecuteReference(
      "SELECT o_orderkey, o_totalprice FROM orders "
      "ORDER BY o_totalprice DESC, o_orderkey LIMIT 10");
  ASSERT_TRUE(ref.ok());
  // Fully deterministic ordering: compare in order.
  ASSERT_EQ(dist->rows.size(), ref->rows.size());
  for (size_t i = 0; i < dist->rows.size(); ++i) {
    EXPECT_EQ(CompareRows(dist->rows[i], ref->rows[i]), 0) << i;
  }
}

TEST_F(TpchApplianceTest, ContradictionExecutesTrivially) {
  auto r = session_->Run(
      "SELECT c_name FROM customer WHERE c_acctbal > 10 AND c_acctbal < 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(TpchApplianceTest, ExplainRendersPlanWithoutExecuting) {
  QueryOptions opts;
  opts.compile.explain_only = true;
  auto r = session_->Run(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& text = r->explain_text;
  EXPECT_NE(text.find("parallel plan"), std::string::npos);
  EXPECT_NE(text.find("DSQL step"), std::string::npos);
  EXPECT_NE(text.find("RETURN"), std::string::npos);
  EXPECT_TRUE(r->rows.empty());
  // No temp tables created by Explain.
  for (int n = 0; n < 4; ++n) {
    for (const std::string& t :
         appliance_->compute_node(n).catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos);
    }
  }
}

// Structural JSON sanity: balanced braces/brackets outside string literals
// and no trailing garbage (full grammar validation lives in obs_test).
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !s.empty();
}

TEST_F(TpchApplianceTest, ExecuteAnalyzeProfilesJoinAggregate) {
  const std::string sql =
      "SELECT c_name, SUM(o_totalprice) AS total FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_name";
  QueryOptions analyze;
  analyze.observe.collect_operator_actuals = true;
  auto r = session_->Run(sql, analyze);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::QueryProfile& p = r->profile;

  // Every DSQL step is profiled, in order, and the plan needs a data move.
  ASSERT_EQ(p.steps.size(), r->dsql.steps.size());
  ASSERT_GE(p.steps.size(), 2u);
  bool saw_dms = false;
  for (size_t i = 0; i < p.steps.size(); ++i) {
    EXPECT_EQ(p.steps[i].index, static_cast<int>(i));
    if (p.steps[i].kind == "DMS") {
      saw_dms = true;
      EXPECT_FALSE(p.steps[i].move_kind.empty());
      EXPECT_NE(p.steps[i].dest_table.find("TEMP_ID"), std::string::npos);
      // Rows crossed DMS, so the per-component meters saw bytes.
      EXPECT_GT(p.steps[i].rows_moved, 0);
      EXPECT_GT(p.steps[i].reader.bytes, 0);
      EXPECT_GT(p.steps[i].network.bytes + p.steps[i].bulkcopy.bytes, 0);
    }
  }
  EXPECT_TRUE(saw_dms);

  // Estimated vs actual rows on the final step: the actuals are the real
  // result, the estimate comes from the cardinality model.
  const obs::StepProfile& last = p.steps.back();
  EXPECT_EQ(last.kind, "RETURN");
  EXPECT_EQ(last.actual_rows, static_cast<double>(r->rows.size()));
  EXPECT_GT(last.estimated_rows, 0);
  EXPECT_GE(last.MisestimateFactor(), 1.0);

  // Per-operator actuals were collected and the scans saw real rows.
  ASSERT_FALSE(last.operators.empty());
  EXPECT_GT(last.operators.front().actual_rows, 0);
  bool saw_nodes = false;
  for (const auto& op : last.operators) {
    if (op.nodes > 1) saw_nodes = true;
  }
  EXPECT_TRUE(saw_nodes);  // RETURN SQL runs on all 4 compute nodes

  // Fig. 2 compile phases all reported.
  ASSERT_FALSE(p.compile_phases.empty());
  for (const char* phase : {"parse", "bind", "normalize", "memo",
                            "xml_export", "xml_import", "pdw_optimize",
                            "dsql_gen"}) {
    bool found = false;
    for (const auto& ph : p.compile_phases) {
      if (ph.name == phase) found = true;
    }
    EXPECT_TRUE(found) << "missing compile phase " << phase;
  }
  EXPECT_GT(p.compile_seconds, 0);

  // Multi-join query: the optimizer search counters must be live.
  EXPECT_GT(p.optimizer.groups, 0);
  EXPECT_GT(p.optimizer.options_considered, 0);
  EXPECT_GT(p.optimizer.options_kept, 0);
  EXPECT_GT(p.optimizer.options_pruned, 0);

  EXPECT_EQ(p.sql, sql);
  EXPECT_GT(p.measured_seconds, 0);
  EXPECT_TRUE(JsonBalanced(p.ToJson()));

  // Plain Execute carries the same profile minus per-operator actuals.
  auto plain = session_->Run(sql);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->profile.steps.size(), p.steps.size());
  EXPECT_TRUE(plain->profile.steps.back().operators.empty());
}

TEST_F(TpchApplianceTest, ExplainAnalyzeRendersEstimatedVsActual) {
  QueryOptions analyze;
  analyze.observe.collect_operator_actuals = true;
  auto r = session_->Run(
      "SELECT c_name, SUM(o_totalprice) AS total FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_name",
      analyze);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& text = r->explain_text;
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("parallel plan"), std::string::npos);
  EXPECT_NE(text.find("DSQL step 0"), std::string::npos);
  EXPECT_NE(text.find("modeled cost"), std::string::npos);
  EXPECT_NE(text.find("measured"), std::string::npos);
  EXPECT_NE(text.find("est. rows"), std::string::npos);
  EXPECT_NE(text.find("actual rows"), std::string::npos);
  EXPECT_NE(text.find("dms: reader{"), std::string::npos);
  EXPECT_NE(text.find("optimizer: groups="), std::string::npos);
  EXPECT_NE(text.find("operators"), std::string::npos);
  // Per-node SQL wall times surface in the rendering.
  EXPECT_NE(text.find("nodes:"), std::string::npos);
  // Execution really happened, and temp tables were cleaned up after.
  for (int n = 0; n < 4; ++n) {
    for (const std::string& t :
         appliance_->compute_node(n).catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos);
    }
  }
}

TEST_F(TpchApplianceTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(session_->Run("SELECT nope FROM customer").ok());
  EXPECT_FALSE(session_->Run("SELECT c_name FROM no_table").ok());
  EXPECT_FALSE(session_->Run("THIS IS NOT SQL").ok());
}

TEST_F(TpchApplianceTest, TempTablesAreCleanedUp) {
  auto r = session_->Run(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  ASSERT_TRUE(r.ok());
  for (int n = 0; n < 4; ++n) {
    for (const std::string& t : appliance_->compute_node(n).catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos) << t;
    }
  }
}

// --- the full query suite as a parameterized sweep ---

class TpchQuerySuiteTest : public TpchApplianceTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(TpchQuerySuiteTest, DistributedMatchesReference) {
  const tpch::TpchQuery& q = tpch::Queries()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(q.name);
  ExpectMatchesReference(q.sql);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, TpchQuerySuiteTest,
    ::testing::Range(0, static_cast<int>(tpch::Queries().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return tpch::Queries()[static_cast<size_t>(info.param)].name;
    });

// --- node-count sweep: results must not depend on the topology ---

class TopologySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TopologySweepTest, ResultsIndependentOfNodeCount) {
  Appliance appliance(Topology{GetParam()});
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());
  Session session = appliance.Connect();
  for (const char* sql : {
           "SELECT o_custkey, SUM(o_totalprice) AS s FROM orders "
           "GROUP BY o_custkey",
           "SELECT c_name, o_totalprice FROM customer, orders "
           "WHERE c_custkey = o_custkey AND o_totalprice > 200000",
           "SELECT COUNT(*) AS c FROM lineitem, orders "
           "WHERE l_orderkey = o_orderkey",
       }) {
    auto dist = session.Run(sql);
    ASSERT_TRUE(dist.ok()) << sql << "\n" << dist.status().ToString();
    auto ref = appliance.ExecuteReference(sql);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(RowSetsEqual(dist->rows, ref->rows))
        << "nodes=" << GetParam() << " sql=" << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, TopologySweepTest,
                         ::testing::Values(1, 2, 3, 8));

// --- skewed data still executes correctly (uniformity is a *cost model*
//     assumption, not a correctness requirement) ---

TEST(SkewTest, SkewedLoadStillCorrect) {
  Appliance appliance(Topology{4});
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  cfg.skew = 3;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());
  const char* sql =
      "SELECT c_custkey, COUNT(*) AS c FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_custkey";
  auto dist = appliance.Connect().Run(sql);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  auto ref = appliance.ExecuteReference(sql);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(RowSetsEqual(dist->rows, ref->rows));
}

// --- baseline plans also execute and agree ---

TEST(BaselineExecutionTest, BaselinePlanProducesSameRows) {
  Appliance appliance(Topology{4});
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());
  const char* sql =
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
      "AND l_quantity > 45";
  auto comp = CompilePdwQuery(appliance.shell(), sql);
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  auto pdw_run = appliance.ExecutePlan(*comp->parallel.plan, comp->output_names);
  ASSERT_TRUE(pdw_run.ok()) << pdw_run.status().ToString();
  auto base_run = appliance.ExecutePlan(*comp->baseline_plan, comp->output_names);
  ASSERT_TRUE(base_run.ok()) << base_run.status().ToString();
  EXPECT_TRUE(RowSetsEqual(pdw_run->rows, base_run->rows));
  // And the PDW plan moves no more bytes than the baseline.
  double pdw_bytes = pdw_run->dms_metrics.network.bytes +
                     pdw_run->dms_metrics.bulkcopy.bytes;
  double base_bytes = base_run->dms_metrics.network.bytes +
                      base_run->dms_metrics.bulkcopy.bytes;
  EXPECT_LE(pdw_bytes, base_bytes + 1);
}

}  // namespace
}  // namespace pdw
