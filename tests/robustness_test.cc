#include <gtest/gtest.h>

#include <functional>

#include "appliance/appliance.h"
#include "pdw/compiler.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

// ---------------------------------------------------------------------------
// Failure injection: a node missing a table mid-plan must surface a clean
// error and leave no temp-table litter anywhere.
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, NodeMissingTableFailsCleanly) {
  Appliance appliance(Topology{4});
  Session session = appliance.Connect();
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());

  // Sabotage: drop orders on one compute node only.
  ASSERT_TRUE(appliance.mutable_compute_node(2).DropTable("orders").ok());

  auto r = session.Run(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(r.status().message().find("node 2"), std::string::npos)
      << r.status().ToString();

  // No temp tables may survive the failed execution.
  for (int n = 0; n < 4; ++n) {
    for (const std::string& t :
         appliance.compute_node(n).catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos) << "node " << n;
    }
  }
  for (const std::string& t : appliance.control_engine().catalog().ListTables()) {
    EXPECT_EQ(t.find("TEMP_ID"), std::string::npos) << "control";
  }

  // The appliance stays usable for queries that avoid the damaged table.
  auto ok = session.Run("SELECT COUNT(*) AS c FROM customer");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(FailureInjectionTest, ReferenceEngineUnaffectedBySabotage) {
  Appliance appliance(Topology{2});
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());
  ASSERT_TRUE(appliance.mutable_compute_node(0).DropTable("lineitem").ok());
  // Reference execution holds its own copy of the data.
  auto ref = appliance.ExecuteReference("SELECT COUNT(*) AS c FROM lineitem");
  ASSERT_TRUE(ref.ok());
  EXPECT_GT(ref->rows[0][0].int_value(), 0);
}

// ---------------------------------------------------------------------------
// Plan validity invariants: every operator in every optimized plan must
// have distribution-compatible inputs, and every Move must transform its
// input's property into its annotated output property.
// ---------------------------------------------------------------------------

class PlanValidityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    appliance_ = new Appliance(Topology{8});
    session_ = new Session(appliance_->Connect());
    ASSERT_TRUE(tpch::CreateTpchTables(appliance_).ok());
    tpch::TpchConfig cfg;
    cfg.scale = 0.05;
    ASSERT_TRUE(tpch::LoadTpch(appliance_, cfg).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete appliance_;
    appliance_ = nullptr;
  }

  /// Checks structural distribution validity of a parallel plan.
  void ValidatePlan(const PlanNode& node, const ColumnEquivalence& equiv) {
    for (const auto& c : node.children) ValidatePlan(*c, equiv);
    switch (node.kind) {
      case PhysOpKind::kHashJoin:
      case PhysOpKind::kNestedLoopJoin: {
        const DistributionProperty& l = node.children[0]->distribution;
        const DistributionProperty& r = node.children[1]->distribution;
        bool l_dist = l.kind == DistributionKind::kDistributed;
        bool r_dist = r.kind == DistributionKind::kDistributed;
        bool ok = false;
        if (l.is_control() && r.is_control()) ok = true;
        if (l.is_replicated() && r.is_replicated()) ok = true;
        if (l_dist && r.is_replicated()) ok = true;
        if (l.is_replicated() && r_dist) {
          ok = node.join_type == LogicalJoinType::kInner ||
               node.join_type == LogicalJoinType::kCross;
        }
        if (l_dist && r_dist) {
          // Must be collocated on an equated key pair.
          for (const auto& [a, b] : node.equi_keys) {
            if (l.columns.size() == 1 && r.columns.size() == 1 &&
                equiv.Find(l.columns[0]) == equiv.Find(a) &&
                equiv.Find(r.columns[0]) == equiv.Find(b)) {
              ok = true;
            }
          }
        }
        EXPECT_TRUE(ok) << "incompatible join inputs: " << l.ToString()
                        << " vs " << r.ToString() << "\n"
                        << PlanTreeToString(node);
        break;
      }
      case PhysOpKind::kHashAggregate: {
        if (node.agg_phase != AggPhase::kFull) break;
        const DistributionProperty& c = node.children[0]->distribution;
        if (c.kind != DistributionKind::kDistributed) break;
        // Full aggregation over a distributed stream requires the hash
        // columns to be group-by columns (by class).
        for (ColumnId col : c.columns) {
          bool in_groups = false;
          for (ColumnId g : node.group_by) {
            if (equiv.AreEquivalent(col, g)) in_groups = true;
          }
          EXPECT_TRUE(in_groups || node.group_by.empty() == false)
              << "full aggregate over misdistributed input\n"
              << PlanTreeToString(node);
        }
        break;
      }
      case PhysOpKind::kMove: {
        // A move's annotated output must differ meaningfully from a no-op
        // and its kind must match the transition.
        const DistributionProperty& src = node.children[0]->distribution;
        switch (node.move_kind) {
          case DmsOpKind::kBroadcastMove:
            EXPECT_TRUE(node.distribution.is_replicated());
            EXPECT_EQ(src.kind, DistributionKind::kDistributed);
            break;
          case DmsOpKind::kTrimMove:
            EXPECT_TRUE(src.is_replicated());
            EXPECT_EQ(node.distribution.kind, DistributionKind::kDistributed);
            break;
          case DmsOpKind::kPartitionMove:
            EXPECT_TRUE(node.distribution.is_control());
            break;
          case DmsOpKind::kShuffle:
            EXPECT_EQ(node.distribution.kind, DistributionKind::kDistributed);
            EXPECT_FALSE(node.shuffle_columns.empty());
            break;
          default:
            break;
        }
        EXPECT_GE(node.move_cost, 0);
        break;
      }
      default:
        break;
    }
  }

  static Appliance* appliance_;
  static Session* session_;
};

Appliance* PlanValidityTest::appliance_ = nullptr;
Session* PlanValidityTest::session_ = nullptr;

TEST_F(PlanValidityTest, SuitePlansAreDistributionValid) {
  for (const auto& q : tpch::Queries()) {
    SCOPED_TRACE(q.name);
    auto comp = CompilePdwQuery(appliance_->shell(), q.sql);
    ASSERT_TRUE(comp.ok()) << comp.status().ToString();
    PdwOptimizer opt_probe(comp->imported.memo.get(),
                           appliance_->shell().topology());
    ASSERT_TRUE(opt_probe.Optimize().ok());
    ValidatePlan(*comp->parallel.plan, opt_probe.interesting().equivalence);
    ValidatePlan(*comp->baseline_plan, opt_probe.interesting().equivalence);
  }
}

// ---------------------------------------------------------------------------
// DMS conservation invariants under execution.
// ---------------------------------------------------------------------------

TEST(DmsConservationTest, ShuffleConservesRowsAndBytes) {
  DmsService dms(4);
  std::vector<RowVector> slots(5);
  for (int n = 0; n < 4; ++n) {
    for (int i = 0; i < 100; ++i) {
      slots[static_cast<size_t>(n)].push_back(
          {Datum::Int(n * 100 + i), Datum::Varchar("payload")});
    }
  }
  DmsRunMetrics m;
  auto out = dms.Execute(DmsOpKind::kShuffle, std::move(slots), {0}, &m);
  ASSERT_TRUE(out.ok());
  size_t total = 0;
  for (const auto& s : *out) total += s.size();
  EXPECT_EQ(total, 400u);
  // Everything read is written: the buffers pass through unchanged.
  EXPECT_DOUBLE_EQ(m.reader.bytes, m.writer.bytes);
}

}  // namespace
}  // namespace pdw
