#include <gtest/gtest.h>

#include <random>

#include "stats/column_stats.h"
#include "stats/histogram.h"

namespace pdw {
namespace {

TEST(HistogramTest, UniformEstimates) {
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i % 1000);
  Histogram h = Histogram::Build(values, 32);
  EXPECT_EQ(h.total_rows(), 10000);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 999);
  // ~half the rows below 500.
  double below = h.EstimateLess(500, false);
  EXPECT_NEAR(below, 5000, 600);
  // Equality: ~10 rows per value.
  EXPECT_NEAR(h.EstimateEquals(500), 10, 8);
  // Out of range.
  EXPECT_EQ(h.EstimateEquals(-5), 0);
  EXPECT_EQ(h.EstimateLess(-5, true), 0);
  EXPECT_EQ(h.EstimateLess(5000, true), 10000);
}

TEST(HistogramTest, SkewedData) {
  std::vector<double> values(9000, 1.0);
  for (int i = 0; i < 1000; ++i) values.push_back(100 + i);
  Histogram h = Histogram::Build(values, 16);
  // The heavy value dominates its bucket.
  EXPECT_GT(h.EstimateEquals(1.0), 4000);
  EXPECT_LT(h.EstimateEquals(500.0), 100);
}

TEST(HistogramTest, EmptyAndSingle) {
  Histogram empty = Histogram::Build({}, 8);
  EXPECT_TRUE(empty.empty());
  Histogram single = Histogram::Build({42.0}, 8);
  EXPECT_EQ(single.total_rows(), 1);
  EXPECT_GT(single.EstimateEquals(42.0), 0);
}

TEST(HistogramTest, MergePreservesTotals) {
  std::vector<Histogram> parts;
  double total = 0;
  for (int p = 0; p < 4; ++p) {
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i) values.push_back((i * 7 + p * 250) % 1000);
    total += static_cast<double>(values.size());
    parts.push_back(Histogram::Build(values, 16));
  }
  Histogram merged = Histogram::Merge(parts, /*disjoint=*/false);
  EXPECT_NEAR(merged.total_rows(), total, total * 0.02);
  EXPECT_EQ(merged.min(), 0);
  EXPECT_EQ(merged.max(), 999);
}

TEST(ColumnStatsTest, FromRows) {
  RowVector rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Datum::Int(i % 10), Datum::Varchar("v" + std::to_string(i))});
  }
  rows.push_back({Datum::Null(), Datum::Null()});
  ColumnStats c0 = ColumnStats::FromRows(rows, 0, TypeId::kInt);
  EXPECT_EQ(c0.row_count, 101);
  EXPECT_EQ(c0.null_count, 1);
  EXPECT_EQ(c0.distinct_count, 10);
  EXPECT_EQ(c0.min_value.int_value(), 0);
  EXPECT_EQ(c0.max_value.int_value(), 9);
  EXPECT_FALSE(c0.histogram.empty());

  ColumnStats c1 = ColumnStats::FromRows(rows, 1, TypeId::kVarchar);
  EXPECT_EQ(c1.distinct_count, 100);
  EXPECT_TRUE(c1.histogram.empty());
}

TEST(ColumnStatsTest, SelectivityEstimates) {
  RowVector rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({Datum::Int(i)});
  ColumnStats cs = ColumnStats::FromRows(rows, 0, TypeId::kInt);
  EXPECT_NEAR(cs.EqualsSelectivity(Datum::Int(500)), 0.001, 0.002);
  EXPECT_NEAR(cs.RangeSelectivity(Datum::Int(250), true, Datum::Int(750), false),
              0.5, 0.05);
  EXPECT_NEAR(cs.RangeSelectivity(Datum::Null(), false, Datum::Int(100), false),
              0.1, 0.03);
}

TEST(StatsMergeTest, DisjointNdvAddsExactly) {
  // Simulates per-node stats on the hash-distribution column: value sets
  // are disjoint, so global NDV is the sum (paper §2.2 merge).
  std::vector<ColumnStats> parts;
  for (int node = 0; node < 4; ++node) {
    RowVector rows;
    for (int i = 0; i < 250; ++i) rows.push_back({Datum::Int(node * 1000 + i)});
    parts.push_back(ColumnStats::FromRows(rows, 0, TypeId::kInt));
  }
  ColumnStats merged = ColumnStats::Merge(parts, /*disjoint_values=*/true);
  EXPECT_EQ(merged.row_count, 1000);
  EXPECT_EQ(merged.distinct_count, 1000);
  EXPECT_EQ(merged.min_value.int_value(), 0);
  EXPECT_EQ(merged.max_value.int_value(), 3249);
}

TEST(StatsMergeTest, OverlappingNdvBounded) {
  // Non-distribution column: every node sees the same 25 nation keys.
  std::vector<ColumnStats> parts;
  for (int node = 0; node < 4; ++node) {
    RowVector rows;
    for (int i = 0; i < 250; ++i) rows.push_back({Datum::Int(i % 25)});
    parts.push_back(ColumnStats::FromRows(rows, 0, TypeId::kInt));
  }
  ColumnStats merged = ColumnStats::Merge(parts, /*disjoint_values=*/false);
  EXPECT_EQ(merged.row_count, 1000);
  // True NDV is 25; estimate must be within [25, 100].
  EXPECT_GE(merged.distinct_count, 25);
  EXPECT_LE(merged.distinct_count, 100);
}

TEST(StatsMergeTest, TableStatsMerge) {
  std::vector<TableStats> parts;
  for (int node = 0; node < 2; ++node) {
    RowVector rows;
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Datum::Int(node * 100 + i), Datum::Int(i % 5)});
    }
    TableStats ts;
    ts.row_count = 100;
    ts.avg_row_width = 16;
    ts.columns["key"] = ColumnStats::FromRows(rows, 0, TypeId::kInt);
    ts.columns["grp"] = ColumnStats::FromRows(rows, 1, TypeId::kInt);
    parts.push_back(std::move(ts));
  }
  TableStats merged = TableStats::Merge(parts, "key");
  EXPECT_EQ(merged.row_count, 200);
  EXPECT_EQ(merged.columns["key"].distinct_count, 200);  // disjoint: exact
  EXPECT_LE(merged.columns["grp"].distinct_count, 10);   // overlapping
}

}  // namespace
}  // namespace pdw
