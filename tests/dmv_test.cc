// The live-introspection subsystem end to end: sys.dm_pdw_* system views
// queried through ordinary SQL must observe requests *while they run* (from
// a second session thread, during a concurrent storm), aggregate like any
// other table on either execution engine, expose latency quantiles and the
// plan cache, and export Chrome-trace JSON of a whole query.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

std::unique_ptr<Appliance> MakeLoadedAppliance(int nodes, double scale) {
  auto appliance = std::make_unique<Appliance>(Topology{nodes});
  EXPECT_TRUE(tpch::CreateTpchTables(appliance.get()).ok());
  tpch::TpchConfig cfg;
  cfg.scale = scale;
  EXPECT_TRUE(tpch::LoadTpch(appliance.get(), cfg).ok());
  return appliance;
}

/// Runs a DMV query and returns its rows, failing the test on error.
RowVector Dmv(Appliance* appliance, const std::string& sql,
              const QueryOptions& options = {}) {
  auto r = appliance->Run(sql, options);
  EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
  return r.ok() ? std::move(r->rows) : RowVector{};
}

// A multi-step distributed join: customer/orders are incompatibly
// distributed at these scales, so the plan has DMS movement plus a Return
// step — enough steps for current_step to be observable mid-flight.
const char* kJoinSql =
    "SELECT c_name, o_totalprice FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 1000";

// --- the registry through SQL: finished requests -------------------------

TEST(DmvTest, FinishedRequestVisibleWithStepsAndWorkers) {
  auto appliance = MakeLoadedAppliance(3, 0.02);
  Session session = appliance->Connect();
  auto run = session.Run(kJoinSql);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(run->query_id, 0u);

  std::string by_id = " WHERE request_id = " + std::to_string(run->query_id);
  RowVector reqs = Dmv(appliance.get(),
                       "SELECT status, cache_hit, total_steps, rows_moved, "
                       "total_ms FROM sys.dm_pdw_exec_requests" + by_id);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0][0].string_value(), "complete");
  EXPECT_FALSE(reqs[0][1].bool_value());
  EXPECT_EQ(reqs[0][2].int_value(),
            static_cast<int64_t>(run->dsql.steps.size()));
  EXPECT_GT(reqs[0][4].double_value(), 0);

  RowVector steps = Dmv(appliance.get(),
                        "SELECT step_index, kind, status, elapsed_ms "
                        "FROM sys.dm_pdw_exec_steps" + by_id +
                        " ORDER BY step_index");
  ASSERT_EQ(steps.size(), run->dsql.steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i][0].int_value(), static_cast<int64_t>(i));
    EXPECT_EQ(steps[i][2].string_value(), "complete");
  }
  EXPECT_EQ(steps.back()[1].string_value(), "RETURN");

  // Every DMS step exposes its four component workers.
  RowVector workers = Dmv(appliance.get(),
                          "SELECT worker_type, COUNT(*) AS c "
                          "FROM sys.dm_pdw_dms_workers" + by_id +
                          " GROUP BY worker_type");
  int dms_steps = 0;
  for (const auto& step : run->dsql.steps) {
    if (step.kind == DsqlStepKind::kDms) ++dms_steps;
  }
  if (dms_steps > 0) {
    ASSERT_EQ(workers.size(), 4u);
    for (const Row& w : workers) {
      EXPECT_EQ(w[1].int_value(), dms_steps) << w[0].string_value();
    }
  }
}

TEST(DmvTest, QueryIdsAreMonotonicallyUnique) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  uint64_t last = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = session.Run("SELECT COUNT(*) AS c FROM nation");
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->query_id, last);
    last = r->query_id;
    // The id threads through EXPLAIN ANALYZE and the JSON profile.
    EXPECT_NE(r->explain_text.find(
                  "[query " + std::to_string(r->query_id) + "]"),
              std::string::npos)
        << r->explain_text;
    EXPECT_NE(r->profile.ToJson().find("\"query_id\""), std::string::npos);
  }
}

// --- live observation during a concurrent storm --------------------------

TEST(DmvTest, StormObservedExecutingWithAdvancingSteps) {
  auto appliance = MakeLoadedAppliance(3, 0.02);
  Session session = appliance->Connect();
  // Per-step dispatch latency keeps every storm query in flight for a
  // deterministic, observable window without growing the dataset.
  appliance->set_dispatch_latency_seconds(0.005);

  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  constexpr int kThreads = 4;
  constexpr int kMaxReps = 200;
  std::vector<std::thread> storm;
  for (int t = 0; t < kThreads; ++t) {
    storm.emplace_back([&] {
      for (int rep = 0; rep < kMaxReps && !stop.load(); ++rep) {
        auto r = session.Run(kJoinSql);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        completed.fetch_add(1);
      }
    });
  }

  // Poll from this session thread until a storm query is seen mid-flight:
  // status 'executing' with a valid current step. The DMV request itself
  // appears in the view too (it is also a request), but with zero steps —
  // total_steps > 0 filters it out.
  bool seen_executing = false;
  bool seen_running_step = false;
  while (!(seen_executing && seen_running_step) &&
         completed.load() < kThreads * kMaxReps) {
    RowVector live = Dmv(appliance.get(),
                         "SELECT request_id, current_step, total_steps "
                         "FROM sys.dm_pdw_exec_requests "
                         "WHERE status = 'executing' AND current_step >= 0");
    for (const Row& r : live) {
      EXPECT_GE(r[1].int_value(), 0);
      EXPECT_LT(r[1].int_value(), r[2].int_value());
      seen_executing = true;
    }
    RowVector running = Dmv(appliance.get(),
                            "SELECT request_id, step_index "
                            "FROM sys.dm_pdw_exec_steps "
                            "WHERE status = 'running'");
    if (!running.empty()) seen_running_step = true;
  }
  stop.store(true);
  for (auto& t : storm) t.join();
  EXPECT_TRUE(seen_executing)
      << "never observed a request in status 'executing' ("
      << completed.load() << " storm queries completed)";
  EXPECT_TRUE(seen_running_step)
      << "never observed a step in status 'running'";

  // Once the storm drains, nothing is left active in the registry.
  EXPECT_EQ(appliance->requests().active_count(), 0u);
  RowVector still = Dmv(appliance.get(),
                        "SELECT COUNT(*) AS c FROM sys.dm_pdw_exec_requests "
                        "WHERE status = 'executing' AND total_steps > 0");
  ASSERT_EQ(still.size(), 1u);
  EXPECT_EQ(still[0][0].int_value(), 0);
}

// --- DMV-on-DMV aggregation, on both engines ------------------------------

TEST(DmvTest, AggregationOverViewsMatchesAcrossEngines) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  for (int i = 0; i < 4; ++i) {
    auto r = session.Run("SELECT COUNT(*) AS c FROM region");
    ASSERT_TRUE(r.ok());
  }
  const std::string agg =
      "SELECT status, COUNT(*) AS c, SUM(total_steps) AS s "
      "FROM sys.dm_pdw_exec_requests "
      "WHERE total_steps > 0 GROUP BY status ORDER BY status";
  QueryOptions row_engine;
  row_engine.execute.engine.engine = EngineKind::kRow;
  QueryOptions batch_engine;
  batch_engine.execute.engine.engine = EngineKind::kBatch;
  RowVector on_rows = Dmv(appliance.get(), agg, row_engine);
  RowVector on_batches = Dmv(appliance.get(), agg, batch_engine);
  // DMV requests themselves have zero steps, so the total_steps > 0 filter
  // makes the aggregate identical across the two runs: exactly the four
  // distributed region queries, on either engine.
  ASSERT_EQ(on_rows.size(), 1u);
  EXPECT_EQ(on_rows[0][0].string_value(), "complete");
  EXPECT_EQ(on_rows[0][1].int_value(), 4);
  EXPECT_TRUE(RowSetsEqual(on_rows, on_batches));

  // A DMV joined against itself through a derived table also works — the
  // views are ordinary leaves to the optimizer.
  RowVector joined = Dmv(appliance.get(),
                         "SELECT r.request_id, s.step_index "
                         "FROM sys.dm_pdw_exec_requests AS r, "
                         "sys.dm_pdw_exec_steps AS s "
                         "WHERE r.request_id = s.request_id AND "
                         "r.total_steps > 0");
  EXPECT_FALSE(joined.empty());
}

// --- metrics view: latency quantiles --------------------------------------

TEST(DmvTest, MetricsViewReportsQueryLatencyQuantiles) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  for (int i = 0; i < 5; ++i) {
    auto r = session.Run("SELECT COUNT(*) AS c FROM nation");
    ASSERT_TRUE(r.ok());
  }
  RowVector rows = Dmv(appliance.get(),
                       "SELECT value, mean, p50, p95, p99 "
                       "FROM sys.dm_pdw_metrics "
                       "WHERE metric_name = 'appliance.query.seconds'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GE(rows[0][0].double_value(), 5);  // observation count
  EXPECT_GT(rows[0][1].double_value(), 0);  // mean
  double p50 = rows[0][2].double_value();
  double p95 = rows[0][3].double_value();
  double p99 = rows[0][4].double_value();
  EXPECT_GT(p50, 0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);

  RowVector compile = Dmv(appliance.get(),
                          "SELECT value FROM sys.dm_pdw_metrics "
                          "WHERE metric_name = 'optimizer.compile.seconds'");
  ASSERT_EQ(compile.size(), 1u);
  EXPECT_GE(compile[0][0].double_value(), 5);
}

// --- plan cache view -------------------------------------------------------

TEST(DmvTest, PlanCacheViewShowsEntriesAndHits) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  QueryOptions cached;
  cached.compile.use_plan_cache = true;
  const char* sql = "SELECT COUNT(*) AS c FROM supplier";
  for (int i = 0; i < 3; ++i) {
    auto r = session.Run(sql, cached);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->cache_hit, i > 0);
  }
  RowVector rows = Dmv(appliance.get(),
                       "SELECT sql_text, hits, num_steps, base_tables "
                       "FROM sys.dm_pdw_plan_cache");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), NormalizeSqlForPlanCache(sql));
  EXPECT_EQ(rows[0][1].int_value(), 2);  // two of the three runs hit
  EXPECT_GT(rows[0][2].int_value(), 0);
  EXPECT_NE(rows[0][3].string_value().find("supplier"), std::string::npos);
}

// --- finished-request ring eviction ---------------------------------------

TEST(DmvTest, FinishedRingEvictsOldestBeyondCapacity) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  appliance->requests().set_ring_capacity(4);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    auto r = session.Run("SELECT COUNT(*) AS c FROM region");
    ASSERT_TRUE(r.ok());
    ids.push_back(r->query_id);
  }
  EXPECT_EQ(appliance->requests().finished_count(), 4u);
  std::set<uint64_t> kept;
  for (const auto& req : appliance->requests().Snapshot()) {
    kept.insert(req.query_id);
  }
  // The survivors are the four most recent requests.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(kept.count(ids[i]), i + 4 >= ids.size() ? 1u : 0u) << i;
  }
}

// --- failed requests -------------------------------------------------------

TEST(DmvTest, FailedRequestSurfacesErrorText) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  auto bad = session.Run("SELECT nope FROM no_such_table");
  ASSERT_FALSE(bad.ok());
  RowVector rows = Dmv(appliance.get(),
                       "SELECT sql_text, error_text "
                       "FROM sys.dm_pdw_exec_requests "
                       "WHERE status = 'failed'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0][0].string_value().find("no_such_table"),
            std::string::npos);
  EXPECT_FALSE(rows[0][1].is_null());
}

// --- Chrome trace export ---------------------------------------------------

TEST(DmvTest, TraceOutWritesLoadableChromeTraceJson) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  std::string path = ::testing::TempDir() + "pdw_dmv_trace.json";
  std::remove(path.c_str());
  QueryOptions options;
  options.observe.trace_out = path;
  auto r = session.Run(kJoinSql, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  obs::Tracer::Global().Disable();
  obs::Tracer::Global().Clear();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  // The chrome://tracing envelope with the whole query as one span tree:
  // the root appliance.run span plus compile and step phases under it.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("appliance.run"), std::string::npos);
  EXPECT_NE(json.find("compile.pipeline"), std::string::npos);
  EXPECT_NE(json.find("dsql.step"), std::string::npos);
  EXPECT_NE(json.find("dms.execute"), std::string::npos);
  EXPECT_EQ(json.find("appliance.run"), json.rfind("appliance.run"))
      << "expected exactly one root query span";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdw
