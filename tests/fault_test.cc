// Unit tests of the deterministic fault-injection subsystem: PDW_FAULTS
// schedule parsing (including malformed specs), FaultRegistry arming /
// firing / query scoping, and RetryPolicy backoff + RunWithRetries
// attempt accounting with a fake clock.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "common/status.h"

namespace pdw {
namespace {

using fault::FaultKind;
using fault::FaultRegistry;
using fault::FaultSchedule;
using fault::FaultSpec;
using fault::ParseFaultSchedule;

/// Every registry test starts and ends with a clean global registry so the
/// process-wide singleton never leaks armed schedules between tests.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST(ParseFaultScheduleTest, SingleSpec) {
  auto schedule = ParseFaultSchedule("dms.pack:*:1:transient");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ASSERT_EQ(schedule->size(), 1u);
  EXPECT_EQ((*schedule)[0].point, "dms.pack");
  EXPECT_EQ((*schedule)[0].query, 0u);
  EXPECT_EQ((*schedule)[0].count, 1);
  EXPECT_EQ((*schedule)[0].kind, FaultKind::kTransientError);
}

TEST(ParseFaultScheduleTest, MultipleSpecsAndSeparators) {
  auto schedule = ParseFaultSchedule(
      " dms.network:2:3:permanent ; appliance.step.dispatch:*:*:delay ,"
      " dms.bulkcopy:1:1:delay@0.25 ");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ASSERT_EQ(schedule->size(), 3u);
  EXPECT_EQ((*schedule)[0].point, "dms.network");
  EXPECT_EQ((*schedule)[0].query, 2u);
  EXPECT_EQ((*schedule)[0].count, 3);
  EXPECT_EQ((*schedule)[0].kind, FaultKind::kPermanentError);
  EXPECT_EQ((*schedule)[1].count, -1);  // '*' = unlimited
  EXPECT_EQ((*schedule)[1].kind, FaultKind::kDelay);
  EXPECT_EQ((*schedule)[2].kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ((*schedule)[2].delay_seconds, 0.25);
}

TEST(ParseFaultScheduleTest, EmptyTextIsEmptySchedule) {
  auto schedule = ParseFaultSchedule("");
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->empty());
}

TEST(ParseFaultScheduleTest, RoundTripsThroughToString) {
  const std::string text =
      "dms.pack:*:1:transient,plan_cache.fill:4:*:permanent,"
      "pool.task_start:*:2:delay@0.5";
  auto schedule = ParseFaultSchedule(text);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  EXPECT_EQ(fault::FaultScheduleToString(*schedule), text);
}

TEST(ParseFaultScheduleTest, MalformedSpecsRejected) {
  const char* bad[] = {
      "dms.pack",                       // too few fields
      "dms.pack:*:1",                   // too few fields
      "dms.pack:*:1:transient:extra",   // too many fields
      "no.such.point:*:1:transient",    // unknown point
      "dms.pack:0:1:transient",         // query# must be >= 1
      "dms.pack:-2:1:transient",        // negative query#
      "dms.pack:abc:1:transient",       // non-numeric query#
      "dms.pack:*:0:transient",         // count must be >= 1
      "dms.pack:*:-3:transient",        // negative count
      "dms.pack:*:x:transient",         // non-numeric count
      "dms.pack:*:1:fatal",             // unknown kind
      "dms.pack:*:1:delay@",            // empty delay duration
      "dms.pack:*:1:delay@-1",          // negative delay
      "dms.pack:*:1:delay@2s",          // trailing garbage
  };
  for (const char* text : bad) {
    auto schedule = ParseFaultSchedule(text);
    EXPECT_FALSE(schedule.ok()) << text;
    if (!schedule.ok()) {
      EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(StatusTest, TransientCodeAndFactory) {
  Status s = Status::Transient("node hiccup");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTransient);
  EXPECT_NE(s.ToString().find("transient"), std::string::npos);
}

TEST_F(FaultRegistryTest, AllPointsAreKnownAndNonEmpty) {
  EXPECT_FALSE(FaultRegistry::AllPoints().empty());
  for (const std::string& p : FaultRegistry::AllPoints()) {
    EXPECT_TRUE(FaultRegistry::IsKnownPoint(p)) << p;
  }
  EXPECT_FALSE(FaultRegistry::IsKnownPoint("no.such.point"));
}

TEST_F(FaultRegistryTest, UnarmedCheckIsFree) {
  EXPECT_FALSE(FaultRegistry::Armed());
  // The convenience helper skips the registry entirely when unarmed — no
  // hit is recorded.
  EXPECT_TRUE(fault::Check("dms.pack").ok());
  EXPECT_EQ(FaultRegistry::Global().HitCount("dms.pack"), 0u);
}

TEST_F(FaultRegistryTest, FiresAndBurnsDownCount) {
  FaultRegistry& reg = FaultRegistry::Global();
  uint64_t token = reg.Arm({{"dms.pack", 0, 2, FaultKind::kTransientError}});
  EXPECT_TRUE(FaultRegistry::Armed());

  Status first = reg.Check("dms.pack");
  EXPECT_EQ(first.code(), StatusCode::kTransient);
  EXPECT_NE(first.message().find("dms.pack"), std::string::npos);
  EXPECT_EQ(reg.Check("dms.pack").code(), StatusCode::kTransient);
  // Count exhausted: the point stays traversable but fires no more.
  EXPECT_TRUE(reg.Check("dms.pack").ok());
  EXPECT_EQ(reg.HitCount("dms.pack"), 3u);
  EXPECT_EQ(reg.InjectedCount("dms.pack"), 2u);
  // Other points are unaffected.
  EXPECT_TRUE(reg.Check("dms.unpack").ok());

  reg.Disarm(token);
  EXPECT_FALSE(FaultRegistry::Armed());
}

TEST_F(FaultRegistryTest, PermanentAndDelayKinds) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec delay{"dms.network", 0, 1, FaultKind::kDelay};
  delay.delay_seconds = 0;  // keep the test instant
  uint64_t token = reg.Arm(
      {{"dms.unpack", 0, 1, FaultKind::kPermanentError}, delay});
  EXPECT_EQ(reg.Check("dms.unpack").code(), StatusCode::kExecutionError);
  // Delays perturb timing, not results: Check returns OK.
  EXPECT_TRUE(reg.Check("dms.network").ok());
  EXPECT_EQ(reg.InjectedCount("dms.network"), 1u);
  reg.Disarm(token);
}

TEST_F(FaultRegistryTest, UnlimitedCountNeverBurnsOut) {
  FaultRegistry& reg = FaultRegistry::Global();
  uint64_t token = reg.Arm({{"dms.pack", 0, -1, FaultKind::kTransientError}});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(reg.Check("dms.pack").code(), StatusCode::kTransient);
  }
  EXPECT_EQ(reg.InjectedCount("dms.pack"), 10u);
  reg.Disarm(token);
}

TEST_F(FaultRegistryTest, QueryScopedSpecFiresOnlyInItsQuery) {
  FaultRegistry& reg = FaultRegistry::Global();
  // Fire during the second query after arming, never before or after.
  uint64_t token = reg.Arm({{"dms.pack", 2, -1, FaultKind::kTransientError}});

  reg.BeginQuery();  // query 1
  EXPECT_TRUE(reg.Check("dms.pack").ok());
  reg.BeginQuery();  // query 2
  EXPECT_EQ(reg.Check("dms.pack").code(), StatusCode::kTransient);
  reg.BeginQuery();  // query 3
  EXPECT_TRUE(reg.Check("dms.pack").ok());

  reg.Disarm(token);
}

TEST_F(FaultRegistryTest, MetricsHookSeesEveryFiring) {
  FaultRegistry& reg = FaultRegistry::Global();
  std::vector<std::pair<std::string, FaultKind>> firings;
  reg.SetMetricsHook([&](const std::string& point, FaultKind kind) {
    firings.emplace_back(point, kind);
  });
  uint64_t token = reg.Arm({{"dms.pack", 0, 1, FaultKind::kTransientError}});
  (void)reg.Check("dms.pack");
  (void)reg.Check("dms.pack");  // burnt out: no second firing
  reg.Disarm(token);
  reg.SetMetricsHook(nullptr);
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0].first, "dms.pack");
  EXPECT_EQ(firings[0].second, FaultKind::kTransientError);
}

TEST_F(FaultRegistryTest, ScopedFaultsArmsAndDisarms) {
  {
    fault::ScopedFaults scoped(
        {{"dms.pack", 0, 1, FaultKind::kTransientError}});
    EXPECT_TRUE(FaultRegistry::Armed());
  }
  EXPECT_FALSE(FaultRegistry::Armed());
  {
    fault::ScopedFaults empty_scoped(FaultSchedule{});
    EXPECT_FALSE(FaultRegistry::Armed());  // empty schedule never arms
  }
}

TEST_F(FaultRegistryTest, ResetClearsEverything) {
  FaultRegistry& reg = FaultRegistry::Global();
  reg.Arm({{"dms.pack", 0, 1, FaultKind::kTransientError}});
  (void)reg.Check("dms.pack");
  reg.Reset();
  EXPECT_FALSE(FaultRegistry::Armed());
  EXPECT_EQ(reg.HitCount("dms.pack"), 0u);
  EXPECT_EQ(reg.InjectedCount("dms.pack"), 0u);
}

TEST(RetryPolicyTest, BackoffSequenceIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.005;
  EXPECT_DOUBLE_EQ(policy.BackoffForAttempt(1), 0.001);
  EXPECT_DOUBLE_EQ(policy.BackoffForAttempt(2), 0.002);
  EXPECT_DOUBLE_EQ(policy.BackoffForAttempt(3), 0.004);
  EXPECT_DOUBLE_EQ(policy.BackoffForAttempt(4), 0.005);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffForAttempt(10), 0.005);
}

TEST(RetryPolicyTest, ClassifiesOnlyTransientAsRetryable) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.IsRetryable(Status::Transient("hiccup")));
  EXPECT_FALSE(policy.IsRetryable(Status::OK()));
  EXPECT_FALSE(policy.IsRetryable(Status::ExecutionError("boom")));
  EXPECT_FALSE(policy.IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(policy.IsRetryable(Status::InvalidArgument("bad sql")));
}

TEST(RetryPolicyTest, SleepUsesInjectedClock) {
  RetryPolicy policy;
  std::vector<double> slept;
  policy.sleep_fn = [&](double s) { slept.push_back(s); };
  policy.Sleep(0.125);
  ASSERT_EQ(slept.size(), 1u);
  EXPECT_DOUBLE_EQ(slept[0], 0.125);
}

TEST(RunWithRetriesTest, TransientFailuresRetryUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::vector<double> slept;
  policy.sleep_fn = [&](double s) { slept.push_back(s); };
  int calls = 0;
  std::vector<std::pair<int, double>> retries;
  Status s = RunWithRetries(
      policy,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::Transient("hiccup") : Status::OK();
      },
      [&](int retry, double backoff) { retries.emplace_back(retry, backoff); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_EQ(retries[0].first, 1);
  EXPECT_DOUBLE_EQ(retries[0].second, policy.BackoffForAttempt(1));
  EXPECT_EQ(retries[1].first, 2);
  EXPECT_DOUBLE_EQ(retries[1].second, policy.BackoffForAttempt(2));
  // The fake clock saw exactly the backoff sequence.
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], policy.BackoffForAttempt(1));
  EXPECT_DOUBLE_EQ(slept[1], policy.BackoffForAttempt(2));
}

TEST(RunWithRetriesTest, ExhaustsAttemptsOnPersistentTransient) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_fn = [](double) {};
  int calls = 0;
  Status s = RunWithRetries(policy, [&]() -> Status {
    ++calls;
    return Status::Transient("still down");
  });
  EXPECT_EQ(s.code(), StatusCode::kTransient);
  EXPECT_EQ(calls, 3);
}

TEST(RunWithRetriesTest, PermanentFailureNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_fn = [](double) {};
  int calls = 0;
  Status s = RunWithRetries(policy, [&]() -> Status {
    ++calls;
    return Status::ExecutionError("corrupt");
  });
  EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetriesTest, MaxAttemptsFloorsAtOne) {
  RetryPolicy policy;
  policy.max_attempts = 0;  // degenerate config still runs the body once
  policy.sleep_fn = [](double) {};
  int calls = 0;
  Status s = RunWithRetries(policy, [&]() -> Status {
    ++calls;
    return Status::Transient("hiccup");
  });
  EXPECT_EQ(s.code(), StatusCode::kTransient);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pdw
