#include <gtest/gtest.h>

#include "dms/dms_service.h"

namespace pdw {
namespace {

RowVector MakeRows(int start, int count) {
  RowVector rows;
  for (int i = start; i < start + count; ++i) {
    rows.push_back({Datum::Int(i), Datum::Varchar("v" + std::to_string(i))});
  }
  return rows;
}

size_t TotalRows(const std::vector<RowVector>& slots, int limit) {
  size_t n = 0;
  for (int i = 0; i < limit; ++i) n += slots[static_cast<size_t>(i)].size();
  return n;
}

class DmsTest : public ::testing::Test {
 protected:
  DmsService dms_{4};

  std::vector<RowVector> EmptySlots() {
    return std::vector<RowVector>(static_cast<size_t>(dms_.num_compute_nodes() + 1));
  }
};

TEST_F(DmsTest, PackUnpackRoundTrip) {
  Row row = {Datum::Int(-42), Datum::Double(3.25), Datum::Varchar("hello"),
             Datum::Null(), Datum::Bool(true), Datum::Date(8888)};
  std::vector<uint8_t> buf;
  size_t n = PackRow(row, &buf);
  EXPECT_EQ(n, buf.size());
  size_t offset = 0;
  auto out = UnpackRow(buf, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(offset, buf.size());
  ASSERT_EQ(out->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      EXPECT_TRUE((*out)[i].is_null());
    } else {
      EXPECT_EQ((*out)[i].Compare(row[i]), 0);
      EXPECT_EQ((*out)[i].type(), row[i].type());
    }
  }
}

TEST_F(DmsTest, UnpackDetectsTruncation) {
  Row row = {Datum::Varchar("hello world")};
  std::vector<uint8_t> buf;
  PackRow(row, &buf);
  buf.resize(buf.size() - 3);
  size_t offset = 0;
  EXPECT_FALSE(UnpackRow(buf, &offset).ok());
}

TEST_F(DmsTest, ShufflePartitionsByHash) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n * 100, 50);
  DmsRunMetrics m;
  auto out = dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {0}, &m);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(TotalRows(*out, 4), 200u);
  EXPECT_TRUE((*out)[4].empty());  // nothing lands on control
  // Every row sits on the node its hash demands.
  for (int node = 0; node < 4; ++node) {
    for (const Row& r : (*out)[static_cast<size_t>(node)]) {
      EXPECT_EQ(dms_.TargetNode(r, {0}), node);
    }
  }
  EXPECT_EQ(m.rows_moved, 200);
  EXPECT_GT(m.reader.bytes, 0);
}

TEST_F(DmsTest, ShuffleIsDeterministic) {
  auto run = [&]() {
    auto slots = EmptySlots();
    slots[0] = MakeRows(0, 100);
    auto out = dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {0});
    std::vector<size_t> sizes;
    for (const auto& s : *out) sizes.push_back(s.size());
    return sizes;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(DmsTest, PartitionMoveGathersToControl) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n * 10, 10);
  auto out = dms_.Execute(DmsOpKind::kPartitionMove, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[4].size(), 40u);
  EXPECT_EQ(TotalRows(*out, 4), 0u);
}

TEST_F(DmsTest, BroadcastReplicatesEverywhere) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n * 10, 10);
  DmsRunMetrics m;
  auto out = dms_.Execute(DmsOpKind::kBroadcastMove, std::move(slots), {}, &m);
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 40u);
  }
  // Broadcast reader packs N copies.
  EXPECT_GT(m.reader.bytes, m.writer.bytes / 2);
}

TEST_F(DmsTest, TrimKeepsOwnSliceWithoutNetwork) {
  // Every node holds the same replica.
  RowVector replica = MakeRows(0, 100);
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = replica;
  DmsRunMetrics m;
  auto out = dms_.Execute(DmsOpKind::kTrimMove, std::move(slots), {0}, &m);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(m.network.bytes, 0);
  EXPECT_EQ(TotalRows(*out, 4), 100u);  // one copy survives, partitioned
  for (int node = 0; node < 4; ++node) {
    for (const Row& r : (*out)[static_cast<size_t>(node)]) {
      EXPECT_EQ(dms_.TargetNode(r, {0}), node);
    }
  }
}

TEST_F(DmsTest, ControlNodeMoveReplicates) {
  auto slots = EmptySlots();
  slots[4] = MakeRows(0, 25);  // control node holds the source
  auto out = dms_.Execute(DmsOpKind::kControlNodeMove, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 25u);
  }
}

TEST_F(DmsTest, ReplicatedBroadcastFromOneNode) {
  auto slots = EmptySlots();
  slots[0] = MakeRows(0, 30);
  auto out =
      dms_.Execute(DmsOpKind::kReplicatedBroadcast, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 30u);
  }
}

TEST_F(DmsTest, RemoteCopyToSingle) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n, 5);
  auto out =
      dms_.Execute(DmsOpKind::kRemoteCopyToSingle, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[4].size(), 20u);
}

TEST_F(DmsTest, HashMoveWithoutColumnsRejected) {
  auto slots = EmptySlots();
  slots[0] = MakeRows(0, 5);
  EXPECT_FALSE(dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {}).ok());
}

TEST_F(DmsTest, CalibrationProducesPositiveLambdas) {
  DmsCostParameters p = CalibrateCostModel(2000);
  EXPECT_GT(p.lambda_reader_direct, 0);
  EXPECT_GT(p.lambda_reader_hash, 0);
  EXPECT_GT(p.lambda_network, 0);
  EXPECT_GT(p.lambda_writer, 0);
  EXPECT_GT(p.lambda_bulkcopy, 0);
  // Hashing costs at least as much as direct reads (paper §3.3.3).
  EXPECT_GE(p.lambda_reader_hash, p.lambda_reader_direct * 0.8);
}

}  // namespace
}  // namespace pdw
