#include <gtest/gtest.h>

#include <random>

#include "dms/dms_service.h"
#include "dms/wire_format.h"

namespace pdw {
namespace {

RowVector MakeRows(int start, int count) {
  RowVector rows;
  for (int i = start; i < start + count; ++i) {
    rows.push_back({Datum::Int(i), Datum::Varchar("v" + std::to_string(i))});
  }
  return rows;
}

size_t TotalRows(const std::vector<RowVector>& slots, int limit) {
  size_t n = 0;
  for (int i = 0; i < limit; ++i) n += slots[static_cast<size_t>(i)].size();
  return n;
}

class DmsTest : public ::testing::Test {
 protected:
  DmsService dms_{4};

  std::vector<RowVector> EmptySlots() {
    return std::vector<RowVector>(static_cast<size_t>(dms_.num_compute_nodes() + 1));
  }
};

TEST_F(DmsTest, PackUnpackRoundTrip) {
  Row row = {Datum::Int(-42), Datum::Double(3.25), Datum::Varchar("hello"),
             Datum::Null(), Datum::Bool(true), Datum::Date(8888)};
  std::vector<uint8_t> buf;
  auto packed = PackRow(row, &buf);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(*packed, buf.size());
  size_t offset = 0;
  auto out = UnpackRow(buf, &offset);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(offset, buf.size());
  ASSERT_EQ(out->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      EXPECT_TRUE((*out)[i].is_null());
    } else {
      EXPECT_EQ((*out)[i].Compare(row[i]), 0);
      EXPECT_EQ((*out)[i].type(), row[i].type());
    }
  }
}

TEST_F(DmsTest, UnpackDetectsTruncation) {
  Row row = {Datum::Varchar("hello world")};
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PackRow(row, &buf).ok());
  buf.resize(buf.size() - 3);
  size_t offset = 0;
  EXPECT_FALSE(UnpackRow(buf, &offset).ok());
}

TEST_F(DmsTest, ShufflePartitionsByHash) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n * 100, 50);
  DmsRunMetrics m;
  auto out = dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {0}, &m);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(TotalRows(*out, 4), 200u);
  EXPECT_TRUE((*out)[4].empty());  // nothing lands on control
  // Every row sits on the node its hash demands.
  for (int node = 0; node < 4; ++node) {
    for (const Row& r : (*out)[static_cast<size_t>(node)]) {
      EXPECT_EQ(dms_.TargetNode(r, {0}), node);
    }
  }
  EXPECT_EQ(m.rows_moved, 200);
  EXPECT_GT(m.reader.bytes, 0);
}

TEST_F(DmsTest, ShuffleIsDeterministic) {
  auto run = [&]() {
    auto slots = EmptySlots();
    slots[0] = MakeRows(0, 100);
    auto out = dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {0});
    std::vector<size_t> sizes;
    for (const auto& s : *out) sizes.push_back(s.size());
    return sizes;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(DmsTest, PartitionMoveGathersToControl) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n * 10, 10);
  auto out = dms_.Execute(DmsOpKind::kPartitionMove, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[4].size(), 40u);
  EXPECT_EQ(TotalRows(*out, 4), 0u);
}

TEST_F(DmsTest, BroadcastReplicatesEverywhere) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n * 10, 10);
  DmsRunMetrics m;
  DmsExecOptions opts;
  opts.codec = DmsCodec::kRow;
  auto out = dms_.Execute(DmsOpKind::kBroadcastMove, std::move(slots), {}, &m,
                          nullptr, opts);
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 40u);
  }
  // The legacy row reader packs one copy per target.
  EXPECT_GT(m.reader.bytes, m.writer.bytes / 2);
}

TEST_F(DmsTest, ColumnarBroadcastPacksOnce) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) {
    slots[static_cast<size_t>(n)] = MakeRows(n * 10, 10);
  }
  DmsRunMetrics m;
  DmsExecOptions opts;
  opts.codec = DmsCodec::kColumnar;
  auto out = dms_.Execute(DmsOpKind::kBroadcastMove, std::move(slots), {}, &m,
                          nullptr, opts);
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 40u);
  }
  // The columnar reader packs each source slice once and the network fans
  // it out: reader bytes ≈ writer bytes / N (writer unpacks every copy).
  EXPECT_GT(m.reader.bytes, 0);
  EXPECT_LT(m.reader.bytes, m.writer.bytes / 2);
  EXPECT_NEAR(m.writer.bytes, m.reader.bytes * 4, m.reader.bytes * 0.01);
}

TEST_F(DmsTest, TrimKeepsOwnSliceWithoutNetwork) {
  // Every node holds the same replica.
  RowVector replica = MakeRows(0, 100);
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = replica;
  DmsRunMetrics m;
  auto out = dms_.Execute(DmsOpKind::kTrimMove, std::move(slots), {0}, &m);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(m.network.bytes, 0);
  EXPECT_EQ(TotalRows(*out, 4), 100u);  // one copy survives, partitioned
  for (int node = 0; node < 4; ++node) {
    for (const Row& r : (*out)[static_cast<size_t>(node)]) {
      EXPECT_EQ(dms_.TargetNode(r, {0}), node);
    }
  }
}

TEST_F(DmsTest, ControlNodeMoveReplicates) {
  auto slots = EmptySlots();
  slots[4] = MakeRows(0, 25);  // control node holds the source
  auto out = dms_.Execute(DmsOpKind::kControlNodeMove, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 25u);
  }
}

TEST_F(DmsTest, ReplicatedBroadcastFromOneNode) {
  auto slots = EmptySlots();
  slots[0] = MakeRows(0, 30);
  auto out =
      dms_.Execute(DmsOpKind::kReplicatedBroadcast, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ((*out)[static_cast<size_t>(n)].size(), 30u);
  }
}

TEST_F(DmsTest, RemoteCopyToSingle) {
  auto slots = EmptySlots();
  for (int n = 0; n < 4; ++n) slots[static_cast<size_t>(n)] = MakeRows(n, 5);
  auto out =
      dms_.Execute(DmsOpKind::kRemoteCopyToSingle, std::move(slots), {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[4].size(), 20u);
}

TEST_F(DmsTest, HashMoveWithoutColumnsRejected) {
  auto slots = EmptySlots();
  slots[0] = MakeRows(0, 5);
  EXPECT_FALSE(dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {}).ok());
}

// Datum menagerie used by the routing and fuzz tests: every TypeId, NULLs,
// empty varchars, and the integral-double case whose hash must match kInt.
std::vector<Datum> AllKindsOfDatums() {
  return {Datum::Int(0),
          Datum::Int(-1),
          Datum::Int(1234567890123LL),
          Datum::Double(0.0),
          Datum::Double(-2.5),
          Datum::Double(42.0),  // integral double: hashes like Int(42)
          Datum::Varchar(""),
          Datum::Varchar("x"),
          Datum::Varchar(std::string(300, 'q')),
          Datum::Bool(true),
          Datum::Bool(false),
          Datum::Date(0),
          Datum::Date(-400),
          Datum::Date(20000),
          Datum::Null()};
}

Row RandomRow(std::mt19937* rng, const std::vector<Datum>& pool,
              size_t arity) {
  Row row;
  for (size_t i = 0; i < arity; ++i) {
    row.push_back(pool[(*rng)() % pool.size()]);
  }
  return row;
}

TEST_F(DmsTest, VectorizedRoutingMatchesTargetNode) {
  // The tentpole's consistency guarantee: HashPartitionBatch must send
  // every row exactly where the row-at-a-time TargetNode would, for every
  // type, NULLs, empty strings, and integral doubles, over 1..3 key
  // columns.
  std::mt19937 rng(20120520);
  const std::vector<Datum> pool = AllKindsOfDatums();
  for (size_t num_keys : {1u, 2u, 3u}) {
    const size_t arity = 4;
    RowVector rows;
    for (int i = 0; i < 500; ++i) rows.push_back(RandomRow(&rng, pool, arity));
    std::vector<int> ordinals;
    for (size_t k = 0; k < num_keys; ++k) {
      ordinals.push_back(static_cast<int>(k));
    }
    std::vector<TypeId> types = InferRowTypes(rows);
    std::vector<int> all(arity);
    for (size_t c = 0; c < arity; ++c) all[static_cast<size_t>(c)] = static_cast<int>(c);
    ColumnBatch batch(types);
    AppendRowsToBatch(rows, 0, rows.size(), all, &batch);
    std::vector<SelVector> parts;
    HashPartitionBatch(batch, ordinals, dms_.num_compute_nodes(), &parts);
    ASSERT_EQ(parts.size(), static_cast<size_t>(dms_.num_compute_nodes()));
    size_t covered = 0;
    for (int node = 0; node < dms_.num_compute_nodes(); ++node) {
      for (int32_t r : parts[static_cast<size_t>(node)]) {
        EXPECT_EQ(dms_.TargetNode(rows[static_cast<size_t>(r)], ordinals),
                  node)
            << "row " << r << " keys=" << num_keys;
        ++covered;
      }
    }
    EXPECT_EQ(covered, rows.size());  // a partition for every row
  }
}

TEST_F(DmsTest, WireStringOverflowGuard) {
  // Length fields on the wire are u32; the guard must reject anything
  // longer instead of silently truncating the length.
  EXPECT_TRUE(ValidateWireString(0).ok());
  EXPECT_TRUE(ValidateWireString(kDmsMaxVarcharBytes).ok());
  EXPECT_FALSE(ValidateWireString(kDmsMaxVarcharBytes + 1).ok());
  EXPECT_FALSE(ValidateWireString(static_cast<size_t>(1) << 40).ok());
}

TEST_F(DmsTest, RowCodecFuzzRoundTripAndTruncation) {
  std::mt19937 rng(424242);
  const std::vector<Datum> pool = AllKindsOfDatums();
  for (int iter = 0; iter < 200; ++iter) {
    size_t arity = rng() % 7;  // includes zero-column rows
    Row row = RandomRow(&rng, pool, arity);
    std::vector<uint8_t> buf;
    auto packed = PackRow(row, &buf);
    ASSERT_TRUE(packed.ok());
    size_t offset = 0;
    auto out = UnpackRow(buf, &offset);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(offset, buf.size());
    ASSERT_EQ(out->size(), row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ((*out)[i].is_null(), row[i].is_null());
      if (!row[i].is_null()) {
        EXPECT_EQ((*out)[i].Compare(row[i]), 0);
        EXPECT_EQ((*out)[i].type(), row[i].type());
      }
    }
    // Every strict prefix must fail cleanly — never read past the end,
    // never crash (the buffer-underrun guard).
    for (size_t cut = buf.empty() ? 0 : rng() % buf.size(); cut < buf.size();
         cut += 1 + rng() % 7) {
      std::vector<uint8_t> trunc(buf.begin(),
                                 buf.begin() + static_cast<long>(cut));
      size_t o = 0;
      EXPECT_FALSE(UnpackRow(trunc, &o).ok()) << "cut=" << cut;
    }
  }
  // Garbage tag bytes must be rejected, not interpreted.
  std::vector<uint8_t> evil = {1, 0, 250};  // arity 1, bogus type tag 250
  size_t o = 0;
  EXPECT_FALSE(UnpackRow(evil, &o).ok());
}

TEST_F(DmsTest, BatchCodecFuzzRoundTripAndTruncation) {
  std::mt19937 rng(77777);
  const std::vector<Datum> pool = AllKindsOfDatums();
  for (int iter = 0; iter < 60; ++iter) {
    size_t arity = 1 + rng() % 5;
    size_t count = rng() % 40;  // includes empty batches
    RowVector rows;
    for (size_t i = 0; i < count; ++i) {
      rows.push_back(RandomRow(&rng, pool, arity));
    }
    std::vector<TypeId> types = InferRowTypes(rows);
    if (types.size() != arity) types.assign(arity, TypeId::kInvalid);
    std::vector<int> all;
    for (size_t c = 0; c < arity; ++c) all.push_back(static_cast<int>(c));
    ColumnBatch batch(types);
    AppendRowsToBatch(rows, 0, rows.size(), all, &batch);
    std::vector<uint8_t> buf;
    auto packed = PackBatch(batch, &buf);
    ASSERT_TRUE(packed.ok());
    EXPECT_EQ(*packed, buf.size());
    size_t offset = 0;
    auto out = UnpackBatch(buf, &offset);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(offset, buf.size());
    RowVector round;
    AppendBatchToRows(*out, &round);
    ASSERT_EQ(round.size(), rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < arity; ++c) {
        EXPECT_EQ(round[r][c].is_null(), rows[r][c].is_null());
        if (!rows[r][c].is_null()) {
          EXPECT_EQ(round[r][c].Compare(rows[r][c]), 0) << r << "," << c;
        }
      }
    }
    // Truncated batch buffers fail cleanly at every sampled prefix.
    for (size_t cut = buf.empty() ? 0 : rng() % buf.size(); cut < buf.size();
         cut += 1 + rng() % 13) {
      std::vector<uint8_t> trunc(buf.begin(),
                                 buf.begin() + static_cast<long>(cut));
      size_t o = 0;
      EXPECT_FALSE(UnpackBatch(trunc, &o).ok()) << "cut=" << cut;
    }
  }
}

TEST_F(DmsTest, CalibrationProducesPositiveLambdas) {
  DmsCostParameters p = CalibrateCostModel(2000);
  EXPECT_GT(p.lambda_reader_direct, 0);
  EXPECT_GT(p.lambda_reader_hash, 0);
  EXPECT_GT(p.lambda_network, 0);
  EXPECT_GT(p.lambda_writer, 0);
  EXPECT_GT(p.lambda_bulkcopy, 0);
  // Hashing costs at least as much as direct reads (paper §3.3.3).
  EXPECT_GE(p.lambda_reader_hash, p.lambda_reader_direct * 0.8);
}

}  // namespace
}  // namespace pdw
