// The parallel optimizer (multi-threaded memo enumeration, level-parallel
// cost sweeps) must be a pure speedup: at every thread count the memo, the
// serial winners, and the PDW plan are byte-identical to the single-thread
// run. Beam fallback must degrade gracefully — near-optimal where full DP
// is feasible to compare, and able to order 20+-relation cliques that full
// DP cannot touch. Also covers the ThreadPool nesting guard and the
// budget/beam observability surface (EXPLAIN warning, DMV columns).

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "appliance/appliance.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "optimizer/join_stress.h"
#include "optimizer/serial_optimizer.h"
#include "pdw/compiler.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

struct ShapeCase {
  JoinStressShape shape;
  int relations;
};

// Sizes chosen so full DP is exact but fast: a clique's expression count
// grows ~3^n, a star's ~n*2^n, a chain's ~n^3.
const ShapeCase kFullDpCases[] = {
    {JoinStressShape::kStar, 12},
    {JoinStressShape::kChain, 14},
    {JoinStressShape::kClique, 10},
};

MemoOptions FullDpOptions(int threads) {
  MemoOptions opts;
  opts.max_dp_relations = 15;
  opts.expr_budget = 10'000'000;
  opts.opt_threads = threads;
  return opts;
}

MemoOptions BeamOptions(int threads, int beam_width) {
  MemoOptions opts;
  opts.max_dp_relations = 4;  // force the beam path for every stress size
  opts.beam_width = beam_width;
  opts.opt_threads = threads;
  return opts;
}

std::string MemoTextFor(const JoinStressQuery& q, const MemoOptions& opts) {
  auto r = CompileQuery(q.catalog, q.sql, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r->memo->ToString() : "";
}

TEST(ParallelMemoTest, FullDpByteIdenticalAcrossThreadCounts) {
  for (const ShapeCase& c : kFullDpCases) {
    for (uint32_t seed : {1u, 7u}) {
      JoinStressQuery q = MakeJoinStressQuery({c.shape, c.relations, seed});
      std::string serial = MemoTextFor(q, FullDpOptions(1));
      ASSERT_FALSE(serial.empty());
      for (int threads : {2, 8}) {
        std::string parallel = MemoTextFor(q, FullDpOptions(threads));
        EXPECT_EQ(serial, parallel)
            << JoinStressShapeName(c.shape) << "-" << c.relations << " seed "
            << seed << " diverges at " << threads << " threads";
      }
    }
  }
}

TEST(ParallelMemoTest, BeamByteIdenticalAcrossThreadCounts) {
  for (const ShapeCase& c : kFullDpCases) {
    for (uint32_t seed : {1u, 7u}) {
      JoinStressQuery q = MakeJoinStressQuery({c.shape, c.relations, seed});
      std::string serial = MemoTextFor(q, BeamOptions(1, 16));
      ASSERT_FALSE(serial.empty());
      for (int threads : {2, 8}) {
        EXPECT_EQ(serial, MemoTextFor(q, BeamOptions(threads, 16)))
            << JoinStressShapeName(c.shape) << "-" << c.relations << " seed "
            << seed << " diverges at " << threads << " threads";
      }
    }
  }
}

TEST(ParallelMemoTest, WinnerSweepMatchesRecursiveSerial) {
  for (const ShapeCase& c : kFullDpCases) {
    JoinStressQuery q = MakeJoinStressQuery({c.shape, c.relations, 3});
    auto serial = CompileQuery(q.catalog, q.sql, FullDpOptions(1));
    auto parallel = CompileQuery(q.catalog, q.sql, FullDpOptions(8));
    ASSERT_TRUE(serial.ok() && parallel.ok());
    auto serial_plan = ExtractBestSerialPlan(serial->memo.get(), 1);
    auto parallel_plan = ExtractBestSerialPlan(parallel->memo.get(), 8);
    ASSERT_TRUE(serial_plan.ok()) << serial_plan.status().ToString();
    ASSERT_TRUE(parallel_plan.ok()) << parallel_plan.status().ToString();
    EXPECT_EQ((*serial_plan)->ToString(), (*parallel_plan)->ToString());
    EXPECT_DOUBLE_EQ(SerialWinnerCost(serial->memo.get(), serial->memo->root()),
                     SerialWinnerCost(parallel->memo.get(),
                                      parallel->memo->root()));
  }
}

TEST(ParallelMemoTest, PdwPlanIdenticalAcrossThreadCounts) {
  JoinStressQuery q = MakeJoinStressQuery({JoinStressShape::kChain, 10, 5});
  PdwCompilerOptions serial_opts;
  serial_opts.memo = FullDpOptions(1);
  serial_opts.pdw.opt_threads = 1;
  auto serial = CompilePdwQuery(q.catalog, q.sql, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 8}) {
    PdwCompilerOptions par_opts;
    par_opts.memo = FullDpOptions(threads);
    par_opts.pdw.opt_threads = threads;
    auto parallel = CompilePdwQuery(q.catalog, q.sql, par_opts);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_DOUBLE_EQ(serial->parallel.cost, parallel->parallel.cost);
    EXPECT_EQ(serial->parallel.plan->ToString(),
              parallel->parallel.plan->ToString());
    EXPECT_EQ(serial->parallel.options_considered,
              parallel->parallel.options_considered);
  }
}

TEST(ParallelMemoTest, BeamPlanCostWithinTenPercentOfFullDp) {
  // Shapes where a width-64 beam provably (chain: every interval survives)
  // or reliably (clique: uniform keys) keeps the optimal split reachable.
  const ShapeCase cases[] = {
      {JoinStressShape::kChain, 12},
      {JoinStressShape::kClique, 10},
  };
  for (const ShapeCase& c : cases) {
    JoinStressQuery q = MakeJoinStressQuery({c.shape, c.relations, 11});
    auto full = CompileQuery(q.catalog, q.sql, FullDpOptions(8));
    auto beam = CompileQuery(q.catalog, q.sql, BeamOptions(8, 64));
    ASSERT_TRUE(full.ok() && beam.ok());
    EXPECT_FALSE(full->memo->budget_exhausted());
    EXPECT_TRUE(beam->memo->budget_exhausted());
    EXPECT_TRUE(beam->memo->beam_used());
    ASSERT_TRUE(ExtractBestSerialPlan(full->memo.get(), 8).ok());
    ASSERT_TRUE(ExtractBestSerialPlan(beam->memo.get(), 8).ok());
    double full_cost = SerialWinnerCost(full->memo.get(), full->memo->root());
    double beam_cost = SerialWinnerCost(beam->memo.get(), beam->memo->root());
    EXPECT_GE(beam_cost, full_cost * 0.999)
        << "beam cannot beat exhaustive DP";
    EXPECT_LE(beam_cost, full_cost * 1.10)
        << JoinStressShapeName(c.shape) << "-" << c.relations;
  }
}

TEST(ParallelMemoTest, CliqueTwentyRelationsCompletesViaBeam) {
  JoinStressQuery q = MakeJoinStressQuery({JoinStressShape::kClique, 20, 2});
  MemoOptions opts;  // stock knobs: 20 > max_dp_relations forces the beam
  opts.opt_threads = 8;
  auto r = CompileQuery(q.catalog, q.sql, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->memo->budget_exhausted());
  EXPECT_TRUE(r->memo->beam_used());
  auto plan = ExtractBestSerialPlan(r->memo.get(), 8);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  double cost = SerialWinnerCost(r->memo.get(), r->memo->root());
  EXPECT_GT(cost, 0);
  EXPECT_LT(cost, 1e300);
}

TEST(ParallelMemoTest, BeamWidthZeroFallsBackToSeededChain) {
  JoinStressQuery q = MakeJoinStressQuery({JoinStressShape::kClique, 12, 2});
  MemoOptions opts;
  opts.max_dp_relations = 4;
  opts.beam_width = 0;  // beam off: the pre-existing single seeded order
  auto r = CompileQuery(q.catalog, q.sql, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->memo->budget_exhausted());
  EXPECT_FALSE(r->memo->beam_used());
  EXPECT_TRUE(ExtractBestSerialPlan(r->memo.get(), 1).ok());
}

// --- ThreadPool nesting guard --------------------------------------------

TEST(ThreadPoolNestingTest, DeepNestingClampsToSerialAndCounts) {
  ThreadPool pool(4);
  EXPECT_EQ(ThreadPool::nesting_depth(), 0);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pool.ParallelFor(2, [&](int) { recurse(depth - 1); });
  };
  recurse(6);
  EXPECT_EQ(leaves.load(), 64);  // 2^6: the clamp must not drop work
  EXPECT_EQ(pool.max_nesting_depth(), 6);
  EXPECT_GT(pool.nested_serial_fallbacks(), 0u);
  EXPECT_EQ(ThreadPool::nesting_depth(), 0);  // restored after the batch
}

// --- observability: EXPLAIN warning + DMV columns ------------------------

TEST(OptimizerObservabilityTest, BudgetWarningAndDmvColumns) {
  auto appliance = std::make_unique<Appliance>(Topology{2});
  ASSERT_TRUE(tpch::CreateTpchTables(appliance.get()).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.01;
  ASSERT_TRUE(tpch::LoadTpch(appliance.get(), cfg).ok());
  Session session = appliance->Connect();

  const std::string join_sql =
      "SELECT c_name FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey";

  // A healthy compile: memo stats populated, no degradation.
  auto healthy = session.Run(join_sql);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  {
    auto rows = appliance->Run(
        "SELECT memo_groups, memo_exprs, budget_exhausted, beam_used, "
        "memo_ms FROM sys.dm_pdw_exec_requests WHERE request_id = " +
        std::to_string(healthy->query_id));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->rows.size(), 1u);
    EXPECT_GT(rows->rows[0][0].double_value(), 0);
    EXPECT_GT(rows->rows[0][1].double_value(), 0);
    EXPECT_FALSE(rows->rows[0][2].bool_value());
    EXPECT_FALSE(rows->rows[0][3].bool_value());
    EXPECT_GE(rows->rows[0][4].double_value(), 0);
  }
  EXPECT_EQ(healthy->profile.ToJson().find("\"budget_exhausted\":true"),
            std::string::npos);

  // Starve the budget: the beam engages and every surface reports it.
  PdwCompilerOptions starved;
  starved.memo.expr_budget = 10;
  QueryOptions options;
  options.WithCompilerOptions(starved).WithPlanCache(false);
  auto degraded = session.Run(join_sql, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_NE(degraded->profile.ToText().find(
                "WARNING: join enumeration degraded"),
            std::string::npos)
      << degraded->profile.ToText();
  EXPECT_NE(degraded->profile.ToJson().find("\"budget_exhausted\":true"),
            std::string::npos);
  {
    auto rows = appliance->Run(
        "SELECT budget_exhausted, beam_used, bind_ms, normalize_ms "
        "FROM sys.dm_pdw_exec_requests WHERE request_id = " +
        std::to_string(degraded->query_id));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->rows.size(), 1u);
    EXPECT_TRUE(rows->rows[0][0].bool_value());
    EXPECT_TRUE(rows->rows[0][1].bool_value());
  }

  // EXPLAIN (compile-only) surfaces the same warning in the plan text.
  QueryOptions explain = options;
  explain.WithExplainOnly();
  auto explained = session.Run(join_sql, explain);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_NE(explained->explain_text.find(
                "WARNING: join enumeration degraded"),
            std::string::npos)
      << explained->explain_text;

  // The budget counter moved.
  EXPECT_GE(
      obs::MetricsRegistry::Global().counter("optimizer.budget_exhausted"), 2);
}

}  // namespace
}  // namespace pdw
