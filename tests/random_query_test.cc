// Property-based end-to-end test: randomly generated queries over the
// TPC-H schema must produce identical row sets when executed distributed
// (full PDW pipeline: compile -> XML -> parallel optimize -> DSQL ->
// per-node SQL re-parse -> DMS routing) and on the single-node reference
// engine. Each seed derives one query deterministically.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "appliance/appliance.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

struct TableInfo {
  const char* name;
  std::vector<const char*> int_cols;
  std::vector<const char*> num_cols;  // numeric filter candidates
};

const std::vector<TableInfo>& Tables() {
  static const auto* kTables = new std::vector<TableInfo>{
      {"customer", {"c_custkey", "c_nationkey"}, {"c_acctbal"}},
      {"orders", {"o_orderkey", "o_custkey"}, {"o_totalprice"}},
      {"lineitem",
       {"l_orderkey", "l_partkey", "l_suppkey"},
       {"l_quantity", "l_extendedprice"}},
      {"supplier", {"s_suppkey", "s_nationkey"}, {"s_acctbal"}},
      {"part", {"p_partkey", "p_size"}, {"p_retailprice"}},
      {"partsupp", {"ps_partkey", "ps_suppkey"}, {"ps_supplycost"}},
      {"nation", {"n_nationkey", "n_regionkey"}, {}},
  };
  return *kTables;
}

/// Join edges of the TPC-H FK graph (table index pairs + columns).
struct JoinEdge {
  int a;
  int b;
  const char* a_col;
  const char* b_col;
};

const std::vector<JoinEdge>& Edges() {
  static const auto* kEdges = new std::vector<JoinEdge>{
      {0, 1, "c_custkey", "o_custkey"},
      {1, 2, "o_orderkey", "l_orderkey"},
      {2, 3, "l_suppkey", "s_suppkey"},
      {2, 4, "l_partkey", "p_partkey"},
      {4, 5, "p_partkey", "ps_partkey"},
      {3, 5, "s_suppkey", "ps_suppkey"},
      {0, 6, "c_nationkey", "n_nationkey"},
      {3, 6, "s_nationkey", "n_nationkey"},
  };
  return *kEdges;
}

std::string BuildRandomQuery(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng); };

  // Grow a connected set of 1..4 tables along FK edges.
  std::vector<int> chosen = {pick(static_cast<int>(Tables().size()))};
  std::vector<const JoinEdge*> used_edges;
  int want = 1 + pick(4);
  for (int tries = 0; static_cast<int>(chosen.size()) < want && tries < 20;
       ++tries) {
    const JoinEdge& e = Edges()[static_cast<size_t>(
        pick(static_cast<int>(Edges().size())))];
    bool has_a = false, has_b = false;
    for (int t : chosen) {
      if (t == e.a) has_a = true;
      if (t == e.b) has_b = true;
    }
    if (has_a == has_b) continue;  // need exactly one side present
    chosen.push_back(has_a ? e.b : e.a);
    used_edges.push_back(&e);
  }

  // SELECT list: one int column per table, or an aggregate query.
  bool aggregate = pick(3) == 0;
  std::string select;
  std::string group_col;
  if (aggregate) {
    const TableInfo& t = Tables()[static_cast<size_t>(chosen[0])];
    group_col = t.int_cols[static_cast<size_t>(
        pick(static_cast<int>(t.int_cols.size())))];
    select = std::string(group_col) + ", COUNT(*) AS cnt";
    // Maybe a SUM over a numeric column of any chosen table.
    for (int ti : chosen) {
      const TableInfo& tt = Tables()[static_cast<size_t>(ti)];
      if (!tt.num_cols.empty() && pick(2) == 0) {
        select += std::string(", SUM(") + tt.num_cols[0] + ") AS s";
        break;
      }
    }
  } else {
    bool first = true;
    for (int ti : chosen) {
      const TableInfo& t = Tables()[static_cast<size_t>(ti)];
      if (!first) select += ", ";
      select += t.int_cols[0];
      first = false;
    }
  }

  // FROM + WHERE.
  std::string from;
  for (size_t i = 0; i < chosen.size(); ++i) {
    if (i > 0) from += ", ";
    from += Tables()[static_cast<size_t>(chosen[i])].name;
  }
  std::vector<std::string> conjuncts;
  for (const JoinEdge* e : used_edges) {
    conjuncts.push_back(std::string(e->a_col) + " = " + e->b_col);
  }
  // 0-2 random filters.
  int filters = pick(3);
  for (int f = 0; f < filters; ++f) {
    const TableInfo& t =
        Tables()[static_cast<size_t>(chosen[static_cast<size_t>(
            pick(static_cast<int>(chosen.size())))])];
    if (!t.num_cols.empty() && pick(2) == 0) {
      const char* col = t.num_cols[static_cast<size_t>(
          pick(static_cast<int>(t.num_cols.size())))];
      const char* op = pick(2) == 0 ? ">" : "<";
      conjuncts.push_back(std::string(col) + " " + op + " " +
                          std::to_string(pick(5000)));
    } else {
      const char* col = t.int_cols[static_cast<size_t>(
          pick(static_cast<int>(t.int_cols.size())))];
      conjuncts.push_back(std::string(col) + " > " + std::to_string(pick(50)));
    }
  }

  std::string sql = "SELECT " + select + " FROM " + from;
  if (!conjuncts.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += conjuncts[i];
    }
  }
  if (aggregate) {
    sql += " GROUP BY " + group_col;
    if (pick(2) == 0) sql += " HAVING COUNT(*) >= 1";
  }
  if (pick(3) == 0) {
    // Deterministic ORDER BY over the first output column plus LIMIT.
    std::string first_col = aggregate
                                ? group_col
                                : Tables()[static_cast<size_t>(chosen[0])]
                                      .int_cols[0];
    sql += " ORDER BY " + first_col;
    if (pick(2) == 0) sql += " LIMIT " + std::to_string(1 + pick(50));
  }
  return sql;
}

class RandomQueryTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  static void SetUpTestSuite() {
    appliance_ = new Appliance(Topology{4});
    session_ = new Session(appliance_->Connect());
    ASSERT_TRUE(tpch::CreateTpchTables(appliance_).ok());
    tpch::TpchConfig cfg;
    cfg.scale = 0.03;
    ASSERT_TRUE(tpch::LoadTpch(appliance_, cfg).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete appliance_;
    appliance_ = nullptr;
  }
  static Appliance* appliance_;
  static Session* session_;
};

Appliance* RandomQueryTest::appliance_ = nullptr;
Session* RandomQueryTest::session_ = nullptr;

TEST_P(RandomQueryTest, DistributedMatchesReference) {
  std::string sql = BuildRandomQuery(GetParam());
  SCOPED_TRACE(sql);
  auto dist = session_->Run(sql);
  ASSERT_TRUE(dist.ok()) << sql << "\n" << dist.status().ToString();
  auto ref = appliance_->ExecuteReference(sql);
  ASSERT_TRUE(ref.ok()) << sql << "\n" << ref.status().ToString();
  // LIMIT without a total order can legally differ; our ORDER BY always
  // covers the first column, which may still tie. Compare sizes for
  // limited queries, full multisets otherwise.
  if (sql.find(" LIMIT ") != std::string::npos) {
    EXPECT_EQ(dist->rows.size(), ref->rows.size()) << sql;
  } else {
    EXPECT_TRUE(RowSetsEqual(dist->rows, ref->rows))
        << sql << "\nplan:\n" << dist->plan_text;
  }
}

TEST_P(RandomQueryTest, PreaggSweepMatchesReference) {
  // Partial-aggregate pushdown must be invisible in results: the same
  // random query with the rewrite forced off and on — across engines and
  // DMS codecs chosen per seed — agrees with the reference oracle and
  // with itself. Non-aggregate seeds still exercise the off/on compile
  // paths (the enumerator simply finds no aggregate to push).
  uint32_t seed = GetParam();
  std::string sql = BuildRandomQuery(seed);
  SCOPED_TRACE(sql);

  ExecOptions exec;
  exec.engine = (seed & 1) ? EngineKind::kBatch : EngineKind::kRow;
  DmsCodec codec = (seed & 2) ? DmsCodec::kColumnar : DmsCodec::kRow;

  std::vector<RowVector> got;
  for (int preagg : {0, 1}) {
    PdwCompilerOptions compiler;
    compiler.pdw.enable_preagg = preagg;
    auto res = session_->Run(sql, QueryOptions()
                                      .WithCompilerOptions(compiler)
                                      .WithEngine(exec)
                                      .WithDmsCodec(codec));
    ASSERT_TRUE(res.ok()) << sql << "\npreagg=" << preagg << "\n"
                          << res.status().ToString();
    got.push_back(res->rows);
  }
  auto ref = appliance_->ExecuteReference(sql);
  ASSERT_TRUE(ref.ok()) << sql << "\n" << ref.status().ToString();
  if (sql.find(" LIMIT ") != std::string::npos) {
    EXPECT_EQ(got[0].size(), ref->rows.size()) << sql;
    EXPECT_EQ(got[1].size(), ref->rows.size()) << sql;
  } else {
    EXPECT_TRUE(RowSetsEqual(got[0], ref->rows)) << sql << "\npreagg off";
    EXPECT_TRUE(RowSetsEqual(got[1], ref->rows)) << sql << "\npreagg on";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range(1u, 41u));

}  // namespace
}  // namespace pdw
