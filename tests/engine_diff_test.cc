// Differential fuzz test of the two local execution engines: every seeded
// random query runs through both the row-at-a-time reference interpreter
// and the vectorized batch engine over the same NULL-heavy data, and the
// result multisets must match (RowSetsEqual). Queries mix joins (inner,
// left outer, semi/anti via EXISTS, IN subqueries), expressions, grouped
// and DISTINCT aggregation, HAVING, ORDER BY and LIMIT; batch sizes vary
// per seed so batch-boundary behaviour is fuzzed too. Dedicated tests pin
// the boundary cases: empty input, exactly one batch, and batch size 1.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "engine/local_engine.h"

namespace pdw {
namespace {

// --- data generation: small domains, ~25% NULLs per nullable column ---

Datum MaybeNull(std::mt19937* rng, Datum v) {
  return std::uniform_int_distribution<int>(0, 3)(*rng) == 0 ? Datum::Null()
                                                             : std::move(v);
}

RowVector MakeTaRows(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const char* words[] = {"alpha", "beta", "gamma", "delta",
                         "epsilon", "zeta", "eta", "theta"};
  RowVector rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row r;
    r.push_back(MaybeNull(&rng, Datum::Int(pick(0, 49))));
    r.push_back(MaybeNull(&rng, Datum::Int(pick(0, 9))));
    r.push_back(MaybeNull(&rng, Datum::Double(pick(0, 200) / 2.0)));
    r.push_back(MaybeNull(&rng, Datum::Varchar(words[pick(0, 7)])));
    r.push_back(MaybeNull(&rng, Datum::Date(8766 + pick(0, 1000))));
    rows.push_back(std::move(r));
  }
  return rows;
}

RowVector MakeTbRows(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const char* words[] = {"red", "green", "blue", "cyan"};
  RowVector rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row r;
    r.push_back(MaybeNull(&rng, Datum::Int(pick(0, 49))));
    r.push_back(MaybeNull(&rng, Datum::Int(pick(0, 9))));
    r.push_back(MaybeNull(&rng, Datum::Double(pick(0, 100) / 4.0)));
    r.push_back(MaybeNull(&rng, Datum::Varchar(words[pick(0, 3)])));
    rows.push_back(std::move(r));
  }
  return rows;
}

// --- query generation ---

std::string BuildQuery(uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&](int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng);
  };

  // Join shape around the driving table ta.
  int join_kind = pick(6);  // 0-1 none, 2 inner, 3 left, 4 exists/not, 5 in
  std::string from = "ta";
  bool has_tb_cols = false;
  std::string where;
  auto add_where = [&](const std::string& pred) {
    where += where.empty() ? " WHERE " : " AND ";
    where += pred;
  };
  switch (join_kind) {
    case 2:
      from += " JOIN tb ON a = x";
      if (pick(2) == 0) from += " AND y < 8";
      has_tb_cols = true;
      break;
    case 3:
      from += " LEFT JOIN tb ON a = x";
      has_tb_cols = true;
      break;
    case 4:
      add_where(std::string(pick(2) == 0 ? "" : "NOT ") +
                "EXISTS (SELECT x FROM tb WHERE x = a AND w > " +
                std::to_string(pick(20)) + ")");
      break;
    case 5:
      add_where("b IN (SELECT y FROM tb WHERE w < " +
                std::to_string(5 + pick(20)) + ")");
      break;
    default:
      break;
  }

  // 0-2 extra filters from a pool exercising every predicate kernel.
  const std::vector<std::string> preds = {
      "a > 25",
      "b <= 4",
      "v >= 50.5",
      "v < b * 12",
      "a <> b",
      "a IS NULL",
      "v IS NOT NULL",
      "s LIKE '%a%'",
      "s NOT LIKE 'b%'",
      "a + b > 30",
      "a % 3 = 1",
      "v / 2 > 20",
      "d >= DATE '1994-06-01'",
      "b BETWEEN 2 AND 7",
      "a IN (1, 5, 12, 33)",
      "CASE WHEN b > 5 THEN v ELSE 100 - v END > 40",
  };
  int nfilters = pick(3);
  for (int i = 0; i < nfilters; ++i) {
    add_where(preds[static_cast<size_t>(pick(static_cast<int>(preds.size())))]);
  }

  // SELECT list: aggregate (grouped or scalar) or plain/expression columns.
  int shape = pick(4);
  std::string sql;
  if (shape == 0) {
    // Grouped aggregation, sometimes DISTINCT aggs and HAVING.
    std::string group = pick(2) == 0 ? "b" : "a";
    std::string aggs = "COUNT(*) AS cnt, SUM(v) AS sv, MIN(s) AS mn";
    if (pick(2) == 0) aggs += ", AVG(v) AS av";
    if (pick(2) == 0) aggs += ", COUNT(DISTINCT a) AS da";
    if (pick(3) == 0) aggs += ", SUM(DISTINCT b) AS db";
    sql = "SELECT " + group + ", " + aggs + " FROM " + from + where +
          " GROUP BY " + group;
    if (pick(2) == 0) sql += " HAVING COUNT(*) > 1";
  } else if (shape == 1) {
    // Scalar aggregate (exercises the empty-input one-row path too).
    sql = "SELECT COUNT(*) AS cnt, COUNT(v) AS cv, SUM(a) AS sa, MAX(d) AS "
          "md, MIN(v) AS mv FROM " +
          from + where;
  } else if (shape == 2) {
    // Expression projections.
    sql = "SELECT a, a * 2 + b AS e1, CASE WHEN v > 50 THEN 'hi' WHEN v > 20 "
          "THEN 'mid' ELSE s END AS e2, CAST(v AS INT) AS e3, v IS NULL AS "
          "e4 FROM " +
          from + where;
  } else {
    // Plain columns; the only shape that may take ORDER BY + LIMIT.
    sql = "SELECT a, b, v, s FROM " + from + where;
    if (has_tb_cols && pick(2) == 0) {
      sql = "SELECT a, b, x, y, w FROM " + from + where;
    }
    if (pick(2) == 0) {
      // ORDER BY covers every output column, so even with ties a LIMIT
      // prefix is multiset-determined and the engines must agree exactly.
      size_t sel_start = sql.find("SELECT ") + 7;
      std::string cols = sql.substr(sel_start, sql.find(" FROM") - sel_start);
      sql += " ORDER BY " + cols;
      if (pick(2) == 0) sql += " LIMIT " + std::to_string(1 + pick(40));
    }
  }
  return sql;
}

class EngineDiffTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  static void SetUpTestSuite() {
    engine_ = new LocalEngine();
    ASSERT_TRUE(engine_
                    ->ExecuteSql("CREATE TABLE ta (a INT, b INT, v DOUBLE, "
                                 "s VARCHAR(16), d DATE)")
                    .ok());
    ASSERT_TRUE(engine_
                    ->ExecuteSql("CREATE TABLE tb (x INT, y INT, w DOUBLE, "
                                 "t VARCHAR(16))")
                    .ok());
    ASSERT_TRUE(engine_
                    ->ExecuteSql("CREATE TABLE tempty (a INT, b INT, "
                                 "v DOUBLE, s VARCHAR(16), d DATE)")
                    .ok());
    ASSERT_TRUE(engine_->InsertRows("ta", MakeTaRows(700, 77)).ok());
    ASSERT_TRUE(engine_->InsertRows("tb", MakeTbRows(300, 99)).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }

  static void ExpectEnginesAgree(const std::string& sql, int batch_size) {
    SCOPED_TRACE(sql);
    ExecOptions row_opts;
    row_opts.engine = EngineKind::kRow;
    ExecOptions batch_opts;
    batch_opts.engine = EngineKind::kBatch;
    batch_opts.batch_size = batch_size;
    auto row = engine_->ExecuteSql(sql, nullptr, row_opts);
    auto batch = engine_->ExecuteSql(sql, nullptr, batch_opts);
    // Runtime errors (e.g. a generated division by zero) must surface from
    // both engines or neither.
    ASSERT_EQ(row.ok(), batch.ok())
        << "engines disagree on error status\nrow:   "
        << row.status().ToString() << "\nbatch: " << batch.status().ToString();
    if (!row.ok()) return;
    EXPECT_TRUE(RowSetsEqual(row->rows, batch->rows))
        << "row engine: " << row->rows.size()
        << " rows, batch engine: " << batch->rows.size() << " rows";
  }

  static LocalEngine* engine_;
};

LocalEngine* EngineDiffTest::engine_ = nullptr;

TEST_P(EngineDiffTest, BatchMatchesRow) {
  uint32_t seed = GetParam();
  // Vary batch size with the seed so morsel boundaries land everywhere:
  // mid-batch, on row 0, past the end, and degenerate single-row batches.
  const int kBatchSizes[] = {1, 3, 64, 256, 1024};
  ExpectEnginesAgree(BuildQuery(seed), kBatchSizes[seed % 5]);
}

// >= 200 random queries through both engines.
INSTANTIATE_TEST_SUITE_P(Seeds, EngineDiffTest, ::testing::Range(1u, 221u));

// --- batch-boundary edge cases ---

TEST_F(EngineDiffTest, EmptyInput) {
  ExpectEnginesAgree("SELECT a, b FROM tempty", 1024);
  ExpectEnginesAgree("SELECT a FROM tempty WHERE a > 3", 1024);
  ExpectEnginesAgree("SELECT b, COUNT(*) AS c FROM tempty GROUP BY b", 1024);
  // Scalar aggregate over nothing still yields exactly one row.
  ExpectEnginesAgree("SELECT COUNT(*) AS c, SUM(a) AS s FROM tempty", 1024);
  ExpectEnginesAgree(
      "SELECT a, x FROM tempty LEFT JOIN tb ON a = x", 1024);
  ExpectEnginesAgree("SELECT a, b FROM ta JOIN tempty ON ta.a = tempty.b",
                     1024);
}

TEST_F(EngineDiffTest, ExactlyOneBatch) {
  // Batch size equal to the table's row count: one full batch, no partial
  // second morsel.
  ExpectEnginesAgree("SELECT a, b, v FROM ta WHERE b > 2", 700);
  ExpectEnginesAgree("SELECT b, COUNT(*) AS c, SUM(v) AS s FROM ta GROUP BY b",
                     700);
}

TEST_F(EngineDiffTest, BatchSizeOne) {
  // Every row is its own batch and morsel.
  ExpectEnginesAgree("SELECT a, b FROM ta WHERE v > 40 AND b <= 6", 1);
  ExpectEnginesAgree(
      "SELECT b, COUNT(DISTINCT a) AS da FROM ta GROUP BY b", 1);
  ExpectEnginesAgree("SELECT a, y FROM ta JOIN tb ON a = x AND w > 10", 1);
}

// --- partial-aggregate step shapes (PR 9) ---
//
// Pushed-down partial aggregates reach the node-local engines as plain
// GROUP BY steps keyed on {grouping cols ∩ side} ∪ {join keys} — wider,
// NULL-heavier key sets than a final aggregate, typically followed by a
// second aggregation of the partial output. Exercise those shapes through
// both engines at adversarial batch sizes.

TEST_F(EngineDiffTest, PartialAggregateKeyShapes) {
  for (int batch : {1, 7, 256, 1024}) {
    // Multi-key partial: join key + grouping key, NULLs group together.
    ExpectEnginesAgree(
        "SELECT a, b, COUNT(*) AS c, SUM(v) AS s, COUNT(v) AS cv "
        "FROM ta GROUP BY a, b",
        batch);
    // MIN/MAX partials are idempotent under re-aggregation.
    ExpectEnginesAgree(
        "SELECT b, d, MIN(v) AS lo, MAX(v) AS hi FROM ta GROUP BY b, d",
        batch);
  }
}

TEST_F(EngineDiffTest, ReaggregationOfPartialOutput) {
  // The global phase over a partial: SUM of partial sums / SUM of partial
  // counts, written the way sql_gen renders the split phases.
  ExpectEnginesAgree(
      "SELECT b, SUM(s) AS s, SUM(c) AS c FROM "
      "(SELECT a, b, SUM(v) AS s, COUNT(v) AS c FROM ta GROUP BY a, b) AS p "
      "GROUP BY b",
      64);
  ExpectEnginesAgree(
      "SELECT d, MIN(lo) AS lo, MAX(hi) AS hi FROM "
      "(SELECT b, d, MIN(v) AS lo, MAX(v) AS hi FROM ta GROUP BY b, d) AS p "
      "GROUP BY d",
      3);
}

TEST_F(EngineDiffTest, PartialAggregateEmptyAndDistinct) {
  // Empty input: a partial produces zero groups, not one.
  ExpectEnginesAgree(
      "SELECT a, b, COUNT(*) AS c, SUM(a) AS s FROM tempty GROUP BY a, b",
      1024);
  // DISTINCT aggregates never push down, but the enumerator's refusal
  // must not be masked by an engine divergence on the un-pushed shape.
  ExpectEnginesAgree(
      "SELECT b, COUNT(DISTINCT v) AS dv, SUM(v) AS s FROM ta GROUP BY b",
      17);
}

}  // namespace
}  // namespace pdw
