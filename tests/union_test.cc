#include <gtest/gtest.h>

#include "appliance/appliance.h"
#include "engine/local_engine.h"
#include "pdw/compiler.h"
#include "test_util.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

// --- parsing / binding / local execution ---

class UnionEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE a (x INT, s VARCHAR(10))").ok());
    ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE b (y INT, t VARCHAR(10))").ok());
    ASSERT_TRUE(engine_
                    .ExecuteSql("INSERT INTO a VALUES (1, 'one'), (2, 'two'), "
                                "(2, 'two')")
                    .ok());
    ASSERT_TRUE(engine_
                    .ExecuteSql("INSERT INTO b VALUES (2, 'two'), (3, 'three')")
                    .ok());
  }

  RowVector Run(const std::string& sql) {
    auto r = engine_.ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r->rows : RowVector{};
  }

  LocalEngine engine_;
};

TEST_F(UnionEngineTest, UnionAllKeepsDuplicates) {
  EXPECT_EQ(Run("SELECT x FROM a UNION ALL SELECT y FROM b").size(), 5u);
}

TEST_F(UnionEngineTest, PlainUnionDeduplicates) {
  // Distinct over {1,2,2} u {2,3} = {1,2,3}.
  EXPECT_EQ(Run("SELECT x FROM a UNION SELECT y FROM b").size(), 3u);
}

TEST_F(UnionEngineTest, MultiColumnAndChained) {
  RowVector rows = Run(
      "SELECT x, s FROM a UNION ALL SELECT y, t FROM b "
      "UNION ALL SELECT x, s FROM a WHERE x = 1");
  EXPECT_EQ(rows.size(), 6u);
  ASSERT_EQ(rows[0].size(), 2u);
}

TEST_F(UnionEngineTest, OrderByAndLimitApplyToWholeUnion) {
  RowVector rows = Run(
      "SELECT x FROM a UNION ALL SELECT y FROM b ORDER BY x DESC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].int_value(), 3);
  EXPECT_EQ(rows[1][0].int_value(), 2);
}

TEST_F(UnionEngineTest, MixedNumericTypesWiden) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE d (v DOUBLE)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO d VALUES (1.5)").ok());
  EXPECT_EQ(Run("SELECT x FROM a UNION ALL SELECT v FROM d").size(), 4u);
}

TEST_F(UnionEngineTest, ArityMismatchRejected) {
  EXPECT_FALSE(
      engine_.ExecuteSql("SELECT x, s FROM a UNION ALL SELECT y FROM b").ok());
}

TEST_F(UnionEngineTest, TypeMismatchRejected) {
  EXPECT_FALSE(
      engine_.ExecuteSql("SELECT x FROM a UNION ALL SELECT t FROM b").ok());
}

TEST_F(UnionEngineTest, OrderByBeforeUnionRejected) {
  EXPECT_FALSE(engine_
                   .ExecuteSql("SELECT x FROM a ORDER BY x UNION ALL "
                               "SELECT y FROM b")
                   .ok());
}

// --- PDW optimization of unions ---

class UnionPdwTest : public ::testing::Test {
 protected:
  UnionPdwTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  PdwCompilation Compile(const std::string& sql) {
    auto r = CompilePdwQuery(catalog_, sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).ValueOrDie();
  }

  Catalog catalog_;
};

TEST_F(UnionPdwTest, CollocatedUnionNeedsNoMove) {
  // Both branches are distributed streams; UNION ALL of distributed
  // streams is valid with no movement (§3.1's collocated unions).
  PdwCompilation c = Compile(
      "SELECT o_orderkey FROM orders WHERE o_totalprice > 400000 "
      "UNION ALL SELECT l_orderkey FROM lineitem WHERE l_quantity > 49");
  EXPECT_EQ(CountMoves(*c.parallel.plan), 0) << PlanTreeToString(*c.parallel.plan);
}

TEST_F(UnionPdwTest, ReplicatedUnionStaysReplicated) {
  PdwCompilation c = Compile(
      "SELECT n_name FROM nation UNION ALL SELECT r_name FROM region");
  EXPECT_EQ(CountMoves(*c.parallel.plan), 0);
  EXPECT_TRUE(c.parallel.plan->distribution.is_replicated());
}

TEST_F(UnionPdwTest, MixedUnionRequiresMove) {
  // nation is replicated, orders distributed: a naive union would
  // duplicate nation rows N times; a move must fix one side.
  PdwCompilation c = Compile(
      "SELECT n_nationkey FROM nation "
      "UNION ALL SELECT o_orderkey FROM orders");
  EXPECT_GE(CountMoves(*c.parallel.plan), 1) << PlanTreeToString(*c.parallel.plan);
}

TEST_F(UnionPdwTest, UnionDistinctAggregatesOverUnion) {
  PdwCompilation c = Compile(
      "SELECT o_custkey FROM orders UNION SELECT c_custkey FROM customer");
  bool has_agg = false;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PhysOpKind::kHashAggregate) has_agg = true;
    for (const auto& ch : n.children) walk(*ch);
  };
  walk(*c.parallel.plan);
  EXPECT_TRUE(has_agg);
}

// --- distributed execution correctness ---

TEST(UnionApplianceTest, DistributedUnionMatchesReference) {
  Appliance appliance(Topology{4});
  Session session = appliance.Connect();
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.03;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());
  for (const char* sql : {
           // Distributed UNION ALL.
           "SELECT o_orderkey AS k FROM orders WHERE o_totalprice > 300000 "
           "UNION ALL SELECT l_orderkey AS k FROM lineitem WHERE "
           "l_quantity > 49",
           // Mixed replicated/distributed operands.
           "SELECT n_nationkey AS k FROM nation "
           "UNION ALL SELECT o_custkey AS k FROM orders WHERE "
           "o_totalprice > 400000",
           // Plain UNION (dedup) + ORDER BY over the whole union.
           "SELECT c_nationkey AS k FROM customer UNION "
           "SELECT s_nationkey AS k FROM supplier ORDER BY k",
           // Union feeding an aggregation via a derived table.
           "SELECT u.k, COUNT(*) AS c FROM (SELECT o_custkey AS k FROM "
           "orders UNION ALL SELECT c_custkey AS k FROM customer) AS u "
           "GROUP BY u.k",
       }) {
    SCOPED_TRACE(sql);
    auto dist = session.Run(sql);
    ASSERT_TRUE(dist.ok()) << sql << "\n" << dist.status().ToString();
    auto ref = appliance.ExecuteReference(sql);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_TRUE(RowSetsEqual(dist->rows, ref->rows))
        << sql << "\n" << dist->plan_text;
  }
}

}  // namespace
}  // namespace pdw
