// Workload-management tier: resource-class classification, bounded
// admission (concurrency caps, FIFO-within-priority, fast-fail overload),
// the keyed result cache with in-flight coalescing, cooperative
// cancellation (queued and mid-DMS), and the Session API that fronts it
// all. Unit tests drive WorkloadManager/ResultCache directly; the
// appliance tests go through Session::Run end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "common/fault.h"
#include "common/semaphore.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

using fault::FaultKind;
using fault::FaultRegistry;
using fault::FaultSchedule;
using fault::FaultSpec;

std::unique_ptr<Appliance> MakeLoadedAppliance(int nodes, double scale) {
  auto appliance = std::make_unique<Appliance>(Topology{nodes});
  EXPECT_TRUE(tpch::CreateTpchTables(appliance.get()).ok());
  tpch::TpchConfig cfg;
  cfg.scale = scale;
  EXPECT_TRUE(tpch::LoadTpch(appliance.get(), cfg).ok());
  return appliance;
}

void SpinUntil(const std::function<bool()>& pred, double timeout_s = 5.0) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int>(timeout_s * 1000));
  while (!pred() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- counting semaphore ---

TEST(SemaphoreTest, AcquireReleaseAndResize) {
  CountingSemaphore sem(2);
  EXPECT_EQ(sem.permits(), 2);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_EQ(sem.in_use(), 2);
  EXPECT_EQ(sem.available(), 0);
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
  sem.Release();
  sem.Release();
  // Growing adds headroom immediately; shrinking lets holders drain.
  sem.SetPermits(3);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  for (int i = 0; i < 3; ++i) sem.Release();
}

// --- classification ---

TEST(WorkloadManagerTest, ClassifiesFromModeledCost) {
  WorkloadManagerConfig cfg;
  cfg.medium_cost_threshold = 0.1;
  cfg.large_cost_threshold = 2.0;
  WorkloadManager wlm(cfg);
  EXPECT_EQ(wlm.Classify(0.0, ResourceClass::kAuto), ResourceClass::kSmall);
  EXPECT_EQ(wlm.Classify(0.09, ResourceClass::kAuto), ResourceClass::kSmall);
  EXPECT_EQ(wlm.Classify(0.1, ResourceClass::kAuto), ResourceClass::kMedium);
  EXPECT_EQ(wlm.Classify(1.99, ResourceClass::kAuto), ResourceClass::kMedium);
  EXPECT_EQ(wlm.Classify(2.0, ResourceClass::kAuto), ResourceClass::kLarge);
  // A pinned class wins regardless of cost.
  EXPECT_EQ(wlm.Classify(99.0, ResourceClass::kSmall), ResourceClass::kSmall);
  EXPECT_EQ(wlm.Classify(0.0, ResourceClass::kLarge), ResourceClass::kLarge);
}

// --- bounded admission ---

TEST(WorkloadManagerTest, AdmissionCapsConcurrency) {
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/2, /*queue_depth=*/16,
               /*max_parallel_nodes=*/0};
  WorkloadManager wlm(cfg);
  std::atomic<int> active{0}, peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto ticket = wlm.Admit(static_cast<uint64_t>(t + 1),
                              ResourceClass::kSmall, /*priority=*/0);
      ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      int now = active.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      active.fetch_sub(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(peak.load(), 2);
  auto snap = wlm.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].admitted_total, 8u);
  EXPECT_EQ(snap[0].active, 0);
  EXPECT_EQ(snap[0].queued, 0);
}

TEST(WorkloadManagerTest, DequeueIsFifoWithinPriority) {
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/1, /*queue_depth=*/16,
               /*max_parallel_nodes=*/0};
  WorkloadManager wlm(cfg);
  auto holder = wlm.Admit(1, ResourceClass::kSmall, 0);
  ASSERT_TRUE(holder.ok());

  std::mutex order_mu;
  std::vector<uint64_t> admit_order;
  std::vector<std::thread> waiters;
  // Arrivals (in this order): id 10 prio 0, id 20 prio 5, id 30 prio 0.
  // Expected grants: 20 (highest priority), 10, 30 (FIFO within prio 0).
  struct Arrival {
    uint64_t id;
    int priority;
  };
  for (Arrival a : {Arrival{10, 0}, Arrival{20, 5}, Arrival{30, 0}}) {
    size_t queued_before = wlm.Snapshot()[0].queued;
    waiters.emplace_back([&wlm, &order_mu, &admit_order, a] {
      auto t = wlm.Admit(a.id, ResourceClass::kSmall, a.priority);
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      {
        std::lock_guard<std::mutex> lock(order_mu);
        admit_order.push_back(a.id);
      }
      // Hold briefly so the next grant is strictly ordered behind us.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    // Arrival order must be established before the next waiter queues.
    SpinUntil([&] {
      return wlm.Snapshot()[0].queued == static_cast<int>(queued_before) + 1;
    });
  }
  holder->Release();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(admit_order, (std::vector<uint64_t>{20, 10, 30}));
}

TEST(WorkloadManagerTest, FullQueueFastFailsWithOverloaded) {
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/1, /*queue_depth=*/1,
               /*max_parallel_nodes=*/0};
  WorkloadManager wlm(cfg);
  auto holder = wlm.Admit(1, ResourceClass::kSmall, 0);
  ASSERT_TRUE(holder.ok());
  std::thread waiter([&] {
    auto t = wlm.Admit(2, ResourceClass::kSmall, 0);
    EXPECT_TRUE(t.ok());
  });
  SpinUntil([&] { return wlm.Snapshot()[0].queued == 1; });
  // Slot held, queue full: the third arrival must not block.
  auto overflow = wlm.Admit(3, ResourceClass::kSmall, 0);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(wlm.Snapshot()[0].rejected_total, 1u);
  holder->Release();
  waiter.join();
}

TEST(WorkloadManagerTest, CancelWakesQueuedWaiter) {
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/1, /*queue_depth=*/8,
               /*max_parallel_nodes=*/0};
  WorkloadManager wlm(cfg);
  auto holder = wlm.Admit(1, ResourceClass::kSmall, 0);
  ASSERT_TRUE(holder.ok());
  std::atomic<bool> cancel{false};
  Status waiter_status = Status::OK();
  std::thread waiter([&] {
    auto t = wlm.Admit(2, ResourceClass::kSmall, 0, &cancel);
    waiter_status = t.status();
  });
  SpinUntil([&] { return wlm.Snapshot()[0].queued == 1; });
  cancel.store(true);
  wlm.Poke();
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kCancelled);
  auto snap = wlm.Snapshot();
  EXPECT_EQ(snap[0].cancelled_total, 1u);
  EXPECT_EQ(snap[0].queued, 0);
  // The cancelled waiter consumed nothing: the slot still promotes others.
  holder->Release();
  auto next = wlm.Admit(3, ResourceClass::kSmall, 0);
  EXPECT_TRUE(next.ok());
}

TEST(WorkloadManagerTest, DisabledManagerIsPassThrough) {
  WorkloadManagerConfig cfg;
  cfg.enabled = false;
  cfg.small = {/*concurrency_slots=*/1, /*queue_depth=*/1,
               /*max_parallel_nodes=*/0};
  WorkloadManager wlm(cfg);
  std::vector<WorkloadManager::Ticket> tickets;
  for (int i = 0; i < 10; ++i) {
    auto t = wlm.Admit(static_cast<uint64_t>(i + 1), ResourceClass::kSmall, 0);
    ASSERT_TRUE(t.ok());
    tickets.push_back(std::move(*t));
  }
}

// --- result cache: unit-level coalescing ---

TEST(ResultCacheTest, FollowerCoalescesOntoLeader) {
  ResultCache cache(8);
  bool leader_coalesced = false;
  auto miss = cache.LookupOrJoin("SELECT 1", "fp", &leader_coalesced);
  ASSERT_FALSE(miss.has_value());  // we are the leader
  EXPECT_FALSE(leader_coalesced);

  std::optional<CachedQueryResult> follower_result;
  bool follower_coalesced = false;
  std::thread follower([&] {
    follower_result =
        cache.LookupOrJoin("SELECT 1", "fp", &follower_coalesced);
  });
  // Publish after the follower has had a chance to join the flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  CachedQueryResult published;
  published.column_names = {"c"};
  published.rows = {{Datum::Int(42)}};
  cache.Publish("SELECT 1", "fp", published);
  follower.join();
  ASSERT_TRUE(follower_result.has_value());
  ASSERT_EQ(follower_result->rows.size(), 1u);
  EXPECT_EQ(follower_result->rows[0][0].int_value(), 42);
  // Later lookups hit the LRU.
  auto hit = cache.LookupOrJoin("SELECT 1", "fp");
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(cache.stats().hits, 1u);
}

TEST(ResultCacheTest, FailedLeaderReleasesFollowerToRetry) {
  ResultCache cache(8);
  auto miss = cache.LookupOrJoin("SELECT 2", "fp");
  ASSERT_FALSE(miss.has_value());
  std::optional<CachedQueryResult> follower_result{
      CachedQueryResult{}};  // sentinel: must become nullopt (new leader)
  std::thread follower([&] {
    follower_result = cache.LookupOrJoin("SELECT 2", "fp");
    if (!follower_result.has_value()) {
      // We inherited the leadership; resolve it so nothing dangles.
      cache.FailFlight("SELECT 2", "fp");
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cache.FailFlight("SELECT 2", "fp");
  follower.join();
  EXPECT_FALSE(follower_result.has_value())
      << "follower of a failed flight must retry as the new leader";
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, StaleStatisticsVersionInvalidates) {
  auto versions = std::make_shared<TableVersionTracker>();
  ResultCache cache(8, versions);
  ASSERT_FALSE(cache.LookupOrJoin("SELECT * FROM t", "fp").has_value());
  CachedQueryResult r;
  r.table_versions = {{"t", versions->Version("t")}};
  cache.Publish("SELECT * FROM t", "fp", r);
  ASSERT_TRUE(cache.Lookup("SELECT * FROM t", "fp").has_value());
  versions->Bump("t");
  EXPECT_FALSE(cache.Lookup("SELECT * FROM t", "fp").has_value());
  EXPECT_GE(cache.stats().invalidations, 1u);
}

// --- appliance-level: result cache through Session::Run ---

constexpr const char* kJoinSql =
    "SELECT c_name, o_totalprice FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 200000";

TEST(ResultCacheApplianceTest, RepeatIsServedFromCacheAndInvalidated) {
  auto appliance = MakeLoadedAppliance(2, 0.02);
  Session session = appliance->Connect(QueryOptions().WithResultCache());
  auto first = session.Run(kJoinSql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->result_cache_hit);
  auto second = session.Run(kJoinSql);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->result_cache_hit);
  EXPECT_TRUE(RowSetsEqual(first->rows, second->rows));
  EXPECT_EQ(first->column_names, second->column_names);
  EXPECT_EQ(appliance->result_cache().stats().hits, 1u);

  // A stats refresh on a scanned base table drops the dependent result.
  ASSERT_TRUE(appliance->RefreshStatistics("orders").ok());
  auto third = session.Run(kJoinSql);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_FALSE(third->result_cache_hit);
  EXPECT_TRUE(RowSetsEqual(first->rows, third->rows));
  EXPECT_GE(appliance->result_cache().stats().invalidations, 1u);
}

TEST(ResultCacheApplianceTest, ConcurrentIdenticalQueriesExecuteOnce) {
  auto appliance = MakeLoadedAppliance(2, 0.02);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::mutex result_mu;
  std::vector<RowVector> all_rows;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session session =
          appliance->Connect(QueryOptions().WithResultCache());
      auto r = session.Run(kJoinSql);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      std::lock_guard<std::mutex> lock(result_mu);
      all_rows.push_back(r->rows);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(all_rows.size(), static_cast<size_t>(kThreads));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_TRUE(RowSetsEqual(all_rows[0], all_rows[static_cast<size_t>(t)]))
        << "coalesced/cached result diverged for thread " << t;
  }
  // Exactly one execution: the first miss becomes the leader; everyone
  // else either coalesces onto that flight or hits the published entry.
  ResultCache::Stats stats = appliance->result_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.insertions, 1u);
}

// --- appliance-level: admission, overload, DMV visibility ---

TEST(WorkloadApplianceTest, OverloadStormFastFailsAndIsVisibleInDmv) {
  auto appliance = MakeLoadedAppliance(2, 0.02);
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/1, /*queue_depth=*/1,
               /*max_parallel_nodes=*/0};
  appliance->workload().SetConfig(cfg);

  // Stretch every query so the storm overlaps: each run arms its own
  // one-shot dispatch delay.
  constexpr int kThreads = 8;
  std::atomic<int> ok_count{0}, overloaded{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session session = appliance->Connect();
      FaultSchedule slow;
      slow.push_back(FaultSpec{"appliance.step.dispatch", 0, 1,
                               FaultKind::kDelay, 0.05});
      auto r = session.Run("SELECT COUNT(*) AS c FROM nation",
                           QueryOptions().WithFaults(slow));
      if (r.ok()) {
        ok_count.fetch_add(1);
      } else if (r.status().code() == StatusCode::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok_count.load(), 2) << "slot + queue should both drain";
  EXPECT_GT(overloaded.load(), 0) << "storm never overflowed the queue";

  // The DMV sees the same counters, and the gate fully drained.
  Session session = appliance->Connect();
  auto dmv = session.Run(
      "SELECT resource_class, active, queued, rejected_total, admitted_total "
      "FROM sys.dm_pdw_workload WHERE resource_class = 'small'");
  ASSERT_TRUE(dmv.ok()) << dmv.status().ToString();
  ASSERT_EQ(dmv->rows.size(), 1u);
  EXPECT_EQ(dmv->rows[0][1].int_value(), 0);  // active
  EXPECT_EQ(dmv->rows[0][2].int_value(), 0);  // queued
  EXPECT_EQ(dmv->rows[0][3].int_value(), overloaded.load());
  EXPECT_EQ(dmv->rows[0][4].int_value(), ok_count.load());
  // Queue wait shows up once something actually queued.
  auto snap = appliance->workload().Snapshot();
  EXPECT_GT(snap[0].queue_wait_seconds_total, 0.0);
}

TEST(WorkloadApplianceTest, ExplainAndDmvQueriesBypassAdmission) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  uint64_t admitted_before =
      appliance->workload().Snapshot()[0].admitted_total;
  auto explain = session.Run("SELECT COUNT(*) AS c FROM nation",
                             QueryOptions().WithExplainOnly());
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->resource_class.empty());
  auto dmv = session.Run("SELECT COUNT(*) AS c FROM sys.dm_pdw_workload");
  ASSERT_TRUE(dmv.ok());
  EXPECT_TRUE(dmv->resource_class.empty());
  uint64_t admitted_after = 0;
  for (const auto& s : appliance->workload().Snapshot()) {
    admitted_after += s.admitted_total;
  }
  EXPECT_EQ(admitted_after, admitted_before);
  // A real query goes through the gate and reports its class.
  auto real = session.Run("SELECT COUNT(*) AS c FROM nation");
  ASSERT_TRUE(real.ok());
  EXPECT_EQ(real->resource_class, "small");
}

// --- cancellation through the appliance ---

TEST(CancellationTest, CancelMidFlightReturnsCancelledAndCleansUp) {
  auto appliance = MakeLoadedAppliance(2, 0.02);
  Session session = appliance->Connect();
  Status run_status = Status::OK();
  std::thread runner([&] {
    // One-shot 300ms dispatch delay opens a wide cancellation window.
    FaultSchedule slow;
    slow.push_back(
        FaultSpec{"appliance.step.dispatch", 0, 1, FaultKind::kDelay, 0.3});
    auto r = session.Run(kJoinSql, QueryOptions().WithFaults(slow));
    run_status = r.status();
  });
  // Find the in-flight query id through the registry and cancel it.
  uint64_t victim = 0;
  SpinUntil([&] {
    for (const auto& req : appliance->requests().Snapshot()) {
      if (!obs::IsTerminalPhase(req.phase) && req.total_steps > 0) {
        victim = req.query_id;
        return true;
      }
    }
    return false;
  });
  ASSERT_NE(victim, 0u) << "query never became visible in the registry";
  ASSERT_TRUE(session.Cancel(victim).ok());
  runner.join();
  EXPECT_EQ(run_status.code(), StatusCode::kCancelled)
      << run_status.ToString();

  // No temp-table litter anywhere, and the registry row is terminal.
  for (int n = 0; n < appliance->num_compute_nodes(); ++n) {
    for (const std::string& t :
         appliance->compute_node(n).catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos)
          << "leaked " << t << " on node " << n;
    }
  }
  auto dmv = appliance->Run(
      "SELECT status FROM sys.dm_pdw_exec_requests WHERE request_id = " +
      std::to_string(victim));
  ASSERT_TRUE(dmv.ok());
  ASSERT_EQ(dmv->rows.size(), 1u);
  EXPECT_EQ(dmv->rows[0][0].string_value(), "cancelled");
  // Cancelling a finished query reports NotFound.
  EXPECT_EQ(session.Cancel(victim).code(), StatusCode::kNotFound);
}

TEST(CancellationTest, CancelWhileQueuedForAdmission) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/1, /*queue_depth=*/4,
               /*max_parallel_nodes=*/0};
  appliance->workload().SetConfig(cfg);

  Status holder_status = Status::OK(), queued_status = Status::OK();
  std::thread holder([&] {
    Session s = appliance->Connect();
    FaultSchedule slow;
    slow.push_back(
        FaultSpec{"appliance.step.dispatch", 0, 1, FaultKind::kDelay, 0.3});
    holder_status =
        s.Run("SELECT COUNT(*) AS c FROM nation",
              QueryOptions().WithFaults(slow))
            .status();
  });
  // Wait for the holder to occupy the only slot.
  SpinUntil([&] {
    return appliance->workload().Snapshot()[0].active == 1;
  });
  std::thread queued([&] {
    Session s = appliance->Connect();
    queued_status = s.Run("SELECT COUNT(*) AS c FROM region").status();
  });
  SpinUntil([&] { return appliance->workload().Snapshot()[0].queued == 1; });
  uint64_t victim = 0;
  for (const auto& req : appliance->requests().Snapshot()) {
    if (req.phase == obs::RequestPhase::kQueued) victim = req.query_id;
  }
  ASSERT_NE(victim, 0u);
  ASSERT_TRUE(appliance->Cancel(victim).ok());
  queued.join();
  holder.join();
  EXPECT_TRUE(holder_status.ok()) << holder_status.ToString();
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled)
      << queued_status.ToString();
  auto snap = appliance->workload().Snapshot();
  EXPECT_EQ(snap[0].cancelled_total, 1u);
  EXPECT_EQ(snap[0].queued, 0);
  EXPECT_EQ(snap[0].active, 0);
}

// --- session API ---

TEST(SessionTest, SessionsCarryDistinctIdsIntoTheDmv) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session a = appliance->Connect();
  Session b = appliance->Connect();
  EXPECT_NE(a.id(), b.id());
  EXPECT_GE(a.id(), 2u);  // 1 is the implicit Appliance::Run session
  auto ra = a.Run("SELECT COUNT(*) AS c FROM nation");
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->session_id, a.id());
  auto rb = b.Run("SELECT COUNT(*) AS c FROM region");
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->session_id, b.id());
  auto legacy = appliance->Run("SELECT COUNT(*) AS c FROM region");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->session_id, 1u);

  auto dmv = a.Run(
      "SELECT request_id, session_id FROM sys.dm_pdw_exec_requests "
      "WHERE request_id = " + std::to_string(ra->query_id));
  ASSERT_TRUE(dmv.ok());
  ASSERT_EQ(dmv->rows.size(), 1u);
  EXPECT_EQ(static_cast<uint64_t>(dmv->rows[0][1].int_value()), a.id());
}

TEST(SessionTest, SessionDefaultsApplyAndPerCallOptionsOverride) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect(QueryOptions().WithExplainOnly());
  auto explained = session.Run("SELECT COUNT(*) AS c FROM nation");
  ASSERT_TRUE(explained.ok());
  EXPECT_TRUE(explained->rows.empty());  // session default: explain only
  EXPECT_FALSE(explained->plan_text.empty());
  // A per-call options object replaces the defaults entirely.
  auto executed = session.Run("SELECT COUNT(*) AS c FROM nation",
                              QueryOptions());
  ASSERT_TRUE(executed.ok());
  ASSERT_EQ(executed->rows.size(), 1u);
}

TEST(SessionTest, FluentBuilderComposes) {
  QueryOptions options = QueryOptions()
                             .WithPlanCache(false)
                             .WithExplainOnly()
                             .WithMaxParallelNodes(3)
                             .WithResourceClass(ResourceClass::kLarge)
                             .WithPriority(7)
                             .WithResultCache()
                             .WithOperatorActuals()
                             .WithTraceOut("/tmp/t.json");
  EXPECT_FALSE(options.compile.use_plan_cache);
  EXPECT_TRUE(options.compile.explain_only);
  EXPECT_EQ(options.execute.max_parallel_nodes, 3);
  EXPECT_EQ(options.execute.resource_class, ResourceClass::kLarge);
  EXPECT_EQ(options.execute.priority, 7);
  EXPECT_TRUE(options.execute.use_result_cache);
  EXPECT_TRUE(options.observe.collect_operator_actuals);
  EXPECT_EQ(options.observe.trace_out, "/tmp/t.json");
}

TEST(SessionTest, PlanCacheIsOnByDefault) {
  auto appliance = MakeLoadedAppliance(2, 0.01);
  Session session = appliance->Connect();
  const char* sql = "SELECT COUNT(*) AS c FROM nation";
  auto first = session.Run(sql);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = session.Run(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_GE(appliance->plan_cache().stats().hits, 1u);
}

// --- per-class fan-out caps reach execution ---

TEST(WorkloadApplianceTest, ResourceClassCapsParallelism) {
  auto appliance = MakeLoadedAppliance(4, 0.02);
  WorkloadManagerConfig cfg;
  cfg.small = {/*concurrency_slots=*/4, /*queue_depth=*/8,
               /*max_parallel_nodes=*/1};
  appliance->workload().SetConfig(cfg);
  Session session = appliance->Connect();
  // Capped to the serial loop, results must still match the reference.
  auto r = session.Run(kJoinSql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->resource_class, "small");
  auto ref = appliance->ExecuteReference(kJoinSql);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(RowSetsEqual(r->rows, ref->rows));
}

}  // namespace
}  // namespace pdw
