#include <gtest/gtest.h>

#include "engine/local_engine.h"

namespace pdw {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteSql(
                        "CREATE TABLE t (id INT, grp INT, v DOUBLE, "
                        "name VARCHAR(20), d DATE)")
                    .ok());
    ASSERT_TRUE(engine_
                    .ExecuteSql(
                        "INSERT INTO t VALUES "
                        "(1, 1, 10.5, 'alpha', '1994-01-01'), "
                        "(2, 1, 20.0, 'beta', '1994-06-01'), "
                        "(3, 2, 30.0, 'gamma', '1995-01-01'), "
                        "(4, 2, NULL, 'delta', '1995-06-01'), "
                        "(5, NULL, 50.0, 'epsilon', '1996-01-01')")
                    .ok());
  }

  RowVector Run(const std::string& sql) {
    auto r = engine_.ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? r->rows : RowVector{};
  }

  LocalEngine engine_;
};

TEST_F(EngineTest, ScanAndFilter) {
  EXPECT_EQ(Run("SELECT id FROM t").size(), 5u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE grp = 1").size(), 2u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE v > 15 AND v < 45").size(), 2u);
  // NULL never satisfies a comparison.
  EXPECT_EQ(Run("SELECT id FROM t WHERE v <> 10.5").size(), 3u);
}

TEST_F(EngineTest, IsNullPredicates) {
  EXPECT_EQ(Run("SELECT id FROM t WHERE v IS NULL").size(), 1u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE grp IS NOT NULL").size(), 4u);
}

TEST_F(EngineTest, ProjectionExpressions) {
  RowVector rows = Run("SELECT id * 2 + 1 AS x FROM t WHERE id = 3");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 7);
}

TEST_F(EngineTest, LikeAndStrings) {
  EXPECT_EQ(Run("SELECT id FROM t WHERE name LIKE '%a'").size(), 4u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE name LIKE 'a%'").size(), 1u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE name NOT LIKE '%a'").size(), 1u);
}

TEST_F(EngineTest, DateComparisons) {
  EXPECT_EQ(Run("SELECT id FROM t WHERE d >= DATE '1995-01-01'").size(), 3u);
  EXPECT_EQ(
      Run("SELECT id FROM t WHERE d < DATEADD(year, 1, '1994-06-01')").size(),
      3u);
}

TEST_F(EngineTest, AggregatesWithNulls) {
  RowVector rows =
      Run("SELECT COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 5);   // COUNT(*) counts NULLs
  EXPECT_EQ(rows[0][1].int_value(), 4);   // COUNT(v) does not
  EXPECT_DOUBLE_EQ(rows[0][2].AsDouble(), 110.5);
  EXPECT_DOUBLE_EQ(rows[0][3].AsDouble(), 10.5);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 50.0);
  EXPECT_NEAR(rows[0][5].AsDouble(), 110.5 / 4, 1e-9);
}

TEST_F(EngineTest, GroupByIncludesNullGroup) {
  RowVector rows = Run("SELECT grp, COUNT(*) FROM t GROUP BY grp");
  EXPECT_EQ(rows.size(), 3u);  // groups 1, 2, NULL
}

TEST_F(EngineTest, ScalarAggregateOverEmptyInput) {
  RowVector rows = Run("SELECT COUNT(*), SUM(v) FROM t WHERE id > 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(EngineTest, GroupedAggregateOverEmptyInputIsEmpty) {
  EXPECT_EQ(Run("SELECT grp, COUNT(*) FROM t WHERE id > 100 GROUP BY grp").size(),
            0u);
}

TEST_F(EngineTest, DistinctAggregate) {
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO t VALUES (6, 1, 10.5, 'zeta', "
                                 "'1994-01-01')")
                  .ok());
  RowVector rows = Run("SELECT COUNT(DISTINCT v) FROM t");
  EXPECT_EQ(rows[0][0].int_value(), 4);  // 10.5, 20, 30, 50
}

TEST_F(EngineTest, SelectDistinct) {
  EXPECT_EQ(Run("SELECT DISTINCT grp FROM t").size(), 3u);
}

TEST_F(EngineTest, OrderByAndLimit) {
  RowVector rows = Run("SELECT id FROM t ORDER BY v DESC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].int_value(), 5);
  EXPECT_EQ(rows[1][0].int_value(), 3);
  // NULLs sort first ascending.
  rows = Run("SELECT id FROM t ORDER BY v LIMIT 1");
  EXPECT_EQ(rows[0][0].int_value(), 4);
}

TEST_F(EngineTest, CaseExpression) {
  RowVector rows = Run(
      "SELECT id, CASE WHEN v > 25 THEN 'big' WHEN v > 15 THEN 'mid' "
      "ELSE 'small' END AS size FROM t WHERE v IS NOT NULL ORDER BY id");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][1].string_value(), "small");
  EXPECT_EQ(rows[1][1].string_value(), "mid");
  EXPECT_EQ(rows[2][1].string_value(), "big");
}

TEST_F(EngineTest, JoinTypes) {
  ASSERT_TRUE(engine_
                  .ExecuteSql("CREATE TABLE u (uid INT, label VARCHAR(10))")
                  .ok());
  ASSERT_TRUE(engine_
                  .ExecuteSql("INSERT INTO u VALUES (1, 'one'), (2, 'two'), "
                              "(2, 'deux'), (99, 'none')")
                  .ok());
  // Inner join with duplicate matches.
  EXPECT_EQ(Run("SELECT id, label FROM t, u WHERE id = uid").size(), 3u);
  // Left join preserves unmatched left rows.
  RowVector rows = Run(
      "SELECT id, label FROM t LEFT JOIN u ON id = uid ORDER BY id");
  EXPECT_EQ(rows.size(), 6u);  // 5 t-rows, id=2 doubled
  bool found_null = false;
  for (const Row& r : rows) {
    if (r[1].is_null()) found_null = true;
  }
  EXPECT_TRUE(found_null);
  // Semi via IN.
  EXPECT_EQ(Run("SELECT id FROM t WHERE id IN (SELECT uid FROM u)").size(), 2u);
  // Anti via NOT IN.
  EXPECT_EQ(Run("SELECT id FROM t WHERE id NOT IN (SELECT uid FROM u)").size(),
            3u);
  // EXISTS with correlation.
  EXPECT_EQ(Run("SELECT id FROM t WHERE EXISTS "
                "(SELECT uid FROM u WHERE uid = id)")
                .size(),
            2u);
}

TEST_F(EngineTest, CrossJoin) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE tiny (x INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO tiny VALUES (10), (20)").ok());
  EXPECT_EQ(Run("SELECT id, x FROM t CROSS JOIN tiny").size(), 10u);
}

TEST_F(EngineTest, DerivedTable) {
  RowVector rows = Run(
      "SELECT s.grp, s.total FROM "
      "(SELECT grp, SUM(v) AS total FROM t GROUP BY grp) AS s "
      "WHERE s.total > 25 ORDER BY s.grp");
  // grp=1 sums 30.5, grp=2 sums 30, grp=NULL sums 50: all exceed 25.
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(EngineTest, HavingClause) {
  RowVector rows =
      Run("SELECT grp, COUNT(*) FROM t GROUP BY grp HAVING COUNT(*) >= 2");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(EngineTest, InsertValidation) {
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t VALUES (1, 2)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO missing VALUES (1)").ok());
}

TEST_F(EngineTest, DivisionByZeroFailsExecution) {
  auto r = engine_.ExecuteSql("SELECT id / 0 FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(EngineTest, DropTable) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE tmp (a INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("DROP TABLE tmp").ok());
  EXPECT_FALSE(engine_.ExecuteSql("SELECT a FROM tmp").ok());
}

TEST_F(EngineTest, LocalStatsComputation) {
  auto stats = engine_.ComputeLocalStats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_count, 5);
  EXPECT_EQ(stats->columns.at("id").distinct_count, 5);
  EXPECT_EQ(stats->columns.at("v").null_count, 1);
}

}  // namespace
}  // namespace pdw
