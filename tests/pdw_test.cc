#include <gtest/gtest.h>

#include <functional>

#include "common/string_util.h"
#include "pdw/compiler.h"
#include "pdw/interesting_props.h"
#include "pdw/dsql.h"
#include "sql/parser.h"
#include "test_util.h"
#include "xmlio/memo_xml.h"

namespace pdw {
namespace {

// ---------------------------------------------------------------------------
// DMS cost model (Fig. 5, §3.3).
// ---------------------------------------------------------------------------

class CostModelTest : public ::testing::Test {
 protected:
  DmsCostParameters params_;
};

TEST_F(CostModelTest, CostIsMaxOfComponents) {
  DmsCostModel model(params_, 8);
  auto b = model.CostBreakdown(DmsOpKind::kShuffle, 10000, 100);
  EXPECT_DOUBLE_EQ(b.c_source, std::max(b.c_reader, b.c_network));
  EXPECT_DOUBLE_EQ(b.c_target, std::max(b.c_writer, b.c_bulkcopy));
  EXPECT_DOUBLE_EQ(b.total, std::max(b.c_source, b.c_target));
}

TEST_F(CostModelTest, ShuffleScalesDownWithNodes) {
  DmsCostModel small(params_, 2);
  DmsCostModel large(params_, 16);
  double rows = 1e6, width = 64;
  EXPECT_GT(small.Cost(DmsOpKind::kShuffle, rows, width),
            large.Cost(DmsOpKind::kShuffle, rows, width));
  // 8x more nodes => 8x cheaper shuffle (all components distributed).
  EXPECT_NEAR(small.Cost(DmsOpKind::kShuffle, rows, width) /
                  large.Cost(DmsOpKind::kShuffle, rows, width),
              8.0, 1e-9);
}

TEST_F(CostModelTest, BroadcastCostIndependentOfNodesOnTarget) {
  // The broadcast target ingests the full stream regardless of N.
  DmsCostModel m2(params_, 2);
  DmsCostModel m16(params_, 16);
  double rows = 1e6, width = 64;
  auto b2 = m2.CostBreakdown(DmsOpKind::kBroadcastMove, rows, width);
  auto b16 = m16.CostBreakdown(DmsOpKind::kBroadcastMove, rows, width);
  EXPECT_DOUBLE_EQ(b2.c_target, b16.c_target);
}

TEST_F(CostModelTest, BroadcastBeatsShuffleOnlyForSmallStreams) {
  DmsCostModel model(params_, 8);
  // Broadcasting a big stream costs ~N times a shuffle.
  double big = 1e6;
  EXPECT_GT(model.Cost(DmsOpKind::kBroadcastMove, big, 64),
            model.Cost(DmsOpKind::kShuffle, big, 64));
  // Both scale linearly so the ratio is constant; the plan-level tradeoff
  // (broadcast small side vs shuffle both) is exercised in optimizer tests.
  EXPECT_NEAR(model.Cost(DmsOpKind::kBroadcastMove, big, 64) /
                  model.Cost(DmsOpKind::kShuffle, big, 64),
              8.0,
              8.0 * 0.5);
}

TEST_F(CostModelTest, TrimMoveHasNoNetworkCost) {
  DmsCostModel model(params_, 8);
  auto b = model.CostBreakdown(DmsOpKind::kTrimMove, 1e5, 32);
  EXPECT_EQ(b.bytes_network, 0);
  EXPECT_GT(b.bytes_reader, 0);
}

TEST_F(CostModelTest, MonotoneInRowsAndWidth) {
  DmsCostModel model(params_, 4);
  for (DmsOpKind kind :
       {DmsOpKind::kShuffle, DmsOpKind::kPartitionMove,
        DmsOpKind::kBroadcastMove, DmsOpKind::kTrimMove,
        DmsOpKind::kControlNodeMove, DmsOpKind::kReplicatedBroadcast,
        DmsOpKind::kRemoteCopyToSingle}) {
    EXPECT_LE(model.Cost(kind, 1000, 32), model.Cost(kind, 2000, 32));
    EXPECT_LE(model.Cost(kind, 1000, 32), model.Cost(kind, 1000, 64));
    EXPECT_EQ(model.Cost(kind, 0, 32), 0);
  }
}

TEST_F(CostModelTest, HashingReaderCostsMore) {
  DmsCostModel model(params_, 8);
  auto shuffle = model.CostBreakdown(DmsOpKind::kShuffle, 1e5, 32);
  auto partition = model.CostBreakdown(DmsOpKind::kPartitionMove, 1e5, 32);
  // Same per-node reader bytes, but the shuffle reader hashes.
  EXPECT_DOUBLE_EQ(shuffle.bytes_reader, partition.bytes_reader);
  EXPECT_GT(shuffle.c_reader, partition.c_reader);
}

// ---------------------------------------------------------------------------
// Full PDW compilation (options, invariants, claims).
// ---------------------------------------------------------------------------

class PdwOptimizerTest : public ::testing::Test {
 protected:
  PdwOptimizerTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  PdwCompilation Compile(const std::string& sql, PdwCompilerOptions opts = {}) {
    auto r = CompilePdwQuery(catalog_, sql, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).ValueOrDie();
  }

  static int CountKind(const PlanNode& n, PhysOpKind k) {
    int c = n.kind == k ? 1 : 0;
    for (const auto& ch : n.children) c += CountKind(*ch, k);
    return c;
  }

  static int CountMoveKind(const PlanNode& n, DmsOpKind k) {
    int c = (n.kind == PhysOpKind::kMove && n.move_kind == k) ? 1 : 0;
    for (const auto& ch : n.children) c += CountMoveKind(*ch, k);
    return c;
  }

  static void ScanTables(const PlanNode& n, std::vector<std::string>* out) {
    for (const auto& c : n.children) ScanTables(*c, out);
    if (n.kind == PhysOpKind::kTableScan) out->push_back(n.table_name);
  }

  Catalog catalog_;
};

TEST_F(PdwOptimizerTest, CollocatedJoinNeedsNoMove) {
  // orders and lineitem are both hash-distributed on orderkey.
  PdwCompilation c = Compile(
      "SELECT o_totalprice, l_quantity FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey");
  EXPECT_EQ(CountMoves(*c.parallel.plan), 0) << PlanTreeToString(*c.parallel.plan);
  EXPECT_EQ(c.parallel.cost, 0);
}

TEST_F(PdwOptimizerTest, ReplicatedJoinNeedsNoMove) {
  PdwCompilation c = Compile(
      "SELECT s_name, n_name FROM supplier, nation "
      "WHERE s_nationkey = n_nationkey");
  EXPECT_EQ(CountMoves(*c.parallel.plan), 0);
}

TEST_F(PdwOptimizerTest, IncompatibleJoinGetsExactlyOneMove) {
  PdwCompilation c = Compile(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  EXPECT_EQ(CountMoves(*c.parallel.plan), 1) << PlanTreeToString(*c.parallel.plan);
}

TEST_F(PdwOptimizerTest, SerialVsParallelJoinOrderFlips) {
  // The §2.5 example. Serial joins smallest tables first (customer-orders);
  // PDW exploits the orders-lineitem collocation instead.
  PdwCompilation c = Compile(
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey");
  // PDW plan: the orders-lineitem join happens without a move between
  // them; the only move touches customer (or the joined result).
  EXPECT_LE(CountMoves(*c.parallel.plan), 1);
  EXPECT_LT(c.parallel.cost, c.baseline_cost)
      << "PDW: " << PlanTreeToString(*c.parallel.plan)
      << "baseline: " << PlanTreeToString(*c.baseline_plan);
}

TEST_F(PdwOptimizerTest, PrunedOptionCountRespectsFig4Bound) {
  PdwCompilation c = Compile(
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey");
  // Rebuild the PDW optimizer to inspect per-group option tables.
  PdwOptimizer opt(c.imported.memo.get(), catalog_.topology());
  ASSERT_TRUE(opt.Optimize().ok());
  for (int g = 0; g < c.imported.memo->num_groups(); ++g) {
    size_t interesting = 0;
    auto it = opt.interesting().interesting.find(g);
    if (it != opt.interesting().interesting.end()) {
      interesting = it->second.size();
    }
    // Fig. 4 step 06.ii: best overall + best per interesting property.
    // Replicated and Control count as always-interesting targets here.
    EXPECT_LE(opt.group_options(g).size(), interesting + 3)
        << "group " << g;
  }
}

TEST_F(PdwOptimizerTest, NoPruningKeepsMoreOptions) {
  const char* sql =
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey";
  PdwCompilerOptions pruned;
  PdwCompilerOptions unpruned;
  unpruned.pdw.prune = false;
  PdwCompilation a = Compile(sql, pruned);
  PdwCompilation b = Compile(sql, unpruned);
  EXPECT_GT(b.parallel.options_kept, a.parallel.options_kept);
  // Same winning cost: pruning is lossless for the best plan.
  EXPECT_NEAR(a.parallel.cost, b.parallel.cost, 1e-12);
}

TEST_F(PdwOptimizerTest, TwoPhaseAggregationChosen) {
  // Aggregation on a non-distribution column: expect local/global split.
  PdwCompilation c = Compile(
      "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey");
  int local = 0, global = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
    if (n.kind == PhysOpKind::kHashAggregate) {
      if (n.agg_phase == AggPhase::kLocal) ++local;
      if (n.agg_phase == AggPhase::kGlobal) ++global;
    }
    for (const auto& ch : n.children) walk(*ch);
  };
  walk(*c.parallel.plan);
  EXPECT_EQ(local, 1) << PlanTreeToString(*c.parallel.plan);
  EXPECT_EQ(global, 1);
}

TEST_F(PdwOptimizerTest, CollocatedAggregationSinglePhase) {
  // Group by the distribution column: single-phase, no move.
  PdwCompilation c = Compile(
      "SELECT o_orderkey, SUM(o_totalprice) FROM orders GROUP BY o_orderkey");
  EXPECT_EQ(CountMoves(*c.parallel.plan), 0);
}

TEST_F(PdwOptimizerTest, GroupByJoinColumnReusesShuffledDistribution) {
  // Shuffling orders on o_custkey for the join makes the group-by on
  // c_custkey collocated via the equivalence class.
  PdwCompilation c = Compile(
      "SELECT c_custkey, COUNT(*) FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_custkey");
  EXPECT_LE(CountMoves(*c.parallel.plan), 1) << PlanTreeToString(*c.parallel.plan);
}

TEST_F(PdwOptimizerTest, DistinctAggregateStillPlans) {
  PdwCompilation c = Compile(
      "SELECT o_custkey, COUNT(DISTINCT o_totalprice) FROM orders "
      "GROUP BY o_custkey");
  EXPECT_GE(CountMoves(*c.parallel.plan), 1);  // shuffle then full agg
}

TEST_F(PdwOptimizerTest, XmlRoundTripPreservesSearchSpace) {
  PdwCompilation c = Compile(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 1000");
  EXPECT_FALSE(c.memo_xml.empty());
  EXPECT_EQ(c.imported.memo->num_groups(), c.serial.memo->num_groups());
  EXPECT_EQ(c.imported.memo->num_exprs(), c.serial.memo->num_exprs());
  EXPECT_EQ(c.imported.memo->root(), c.serial.memo->root());
  for (int g = 0; g < c.serial.memo->num_groups(); ++g) {
    EXPECT_NEAR(c.imported.memo->group(g).cardinality,
                c.serial.memo->group(g).cardinality, 1e-6);
    EXPECT_EQ(c.imported.memo->group(g).exprs.size(),
              c.serial.memo->group(g).exprs.size());
  }
}

TEST_F(PdwOptimizerTest, XmlInterfaceOffMatchesOn) {
  const char* sql =
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey";
  PdwCompilerOptions with_xml;
  PdwCompilerOptions without_xml;
  without_xml.use_xml_interface = false;
  PdwCompilation a = Compile(sql, with_xml);
  PdwCompilation b = Compile(sql, without_xml);
  EXPECT_NEAR(a.parallel.cost, b.parallel.cost, 1e-12);
}

TEST_F(PdwOptimizerTest, Q20PlanShape) {
  const char* q20 =
      "SELECT s_name, s_address FROM supplier, nation "
      "WHERE s_suppkey IN ("
      "  SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN ("
      "    SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') "
      "  AND ps_availqty > ("
      "    SELECT 0.5 * SUM(l_quantity) FROM lineitem "
      "    WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey "
      "    AND l_shipdate >= DATE '1994-01-01' "
      "    AND l_shipdate < DATEADD(year, 1, '1994-01-01'))) "
      "AND s_nationkey = n_nationkey AND n_name = 'CANADA' "
      "ORDER BY s_name";
  PdwCompilation c = Compile(q20);
  auto dsql = GenerateDsql(*c.parallel.plan, c.output_names);
  ASSERT_TRUE(dsql.ok()) << dsql.status().ToString();
  // The paper's plan has 4 DSQL steps (3 moves + return); ours must land
  // in the same ballpark and end with a merge-sorted Return.
  EXPECT_GE(dsql->steps.size(), 3u);
  EXPECT_LE(dsql->steps.size(), 5u);
  const DsqlStep& last = dsql->steps.back();
  EXPECT_EQ(last.kind, DsqlStepKind::kReturn);
  EXPECT_FALSE(last.merge_sort.empty());
  // Local/global aggregation appears (the LocalGB/GlobalGB of Fig. 7).
  EXPECT_GE(CountKind(*c.parallel.plan, PhysOpKind::kHashAggregate), 2);
}

TEST_F(PdwOptimizerTest, BaselineNeverBeatsOptimizer) {
  for (const char* sql : {
           "SELECT c_name, o_totalprice FROM customer, orders "
           "WHERE c_custkey = o_custkey",
           "SELECT c_name, l_quantity FROM customer, orders, lineitem "
           "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
           "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY "
           "o_custkey",
           "SELECT n_name, COUNT(*) FROM customer, nation "
           "WHERE c_nationkey = n_nationkey GROUP BY n_name",
       }) {
    PdwCompilation c = Compile(sql);
    EXPECT_LE(c.parallel.cost, c.baseline_cost + 1e-12) << sql;
  }
}

TEST_F(PdwOptimizerTest, TopNUsesLocalLimit) {
  PdwCompilation c = Compile(
      "SELECT o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 5");
  // Expect two Limit nodes: per-node top-5 and the global top-5.
  EXPECT_EQ(CountKind(*c.parallel.plan, PhysOpKind::kLimit), 2)
      << PlanTreeToString(*c.parallel.plan);
}

TEST_F(PdwOptimizerTest, RelationalCostAblationChangesObjective) {
  PdwCompilerOptions dms_only;
  PdwCompilerOptions extended;
  extended.pdw.relational_costs = true;
  const char* sql =
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey";
  PdwCompilation a = Compile(sql, dms_only);
  PdwCompilation b = Compile(sql, extended);
  // The extended model includes relational work, so its total is larger.
  EXPECT_GT(b.parallel.cost, a.parallel.cost);
}

// ---------------------------------------------------------------------------
// Interesting-property derivation (Fig. 4 step 04).
// ---------------------------------------------------------------------------

class InterestingPropsTest : public ::testing::Test {
 protected:
  InterestingPropsTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  InterestingProperties Derive(const std::string& sql) {
    auto comp = CompileQuery(catalog_, sql);
    EXPECT_TRUE(comp.ok()) << comp.status().ToString();
    memo_ = comp->memo;
    return DeriveInterestingProperties(*memo_);
  }

  /// True if some group whose output contains a column named `col` has an
  /// interesting class containing that column.
  bool ColumnIsInteresting(const InterestingProperties& props,
                           const std::string& col) {
    for (int g = 0; g < memo_->num_groups(); ++g) {
      auto it = props.interesting.find(g);
      if (it == props.interesting.end()) continue;
      for (const auto& b : memo_->group(g).output) {
        if (!EqualsIgnoreCase(b.name, col)) continue;
        if (it->second.count(props.equivalence.Find(b.id)) > 0) return true;
      }
    }
    return false;
  }

  Catalog catalog_;
  std::shared_ptr<Memo> memo_;
};

TEST_F(InterestingPropsTest, JoinColumnsAreInteresting) {
  InterestingProperties props = Derive(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  EXPECT_TRUE(ColumnIsInteresting(props, "c_custkey"));
  EXPECT_TRUE(ColumnIsInteresting(props, "o_custkey"));
  // Non-join columns are not.
  EXPECT_FALSE(ColumnIsInteresting(props, "o_totalprice"));
  // The join predicate creates one equivalence class.
  bool equivalent = false;
  for (int g = 0; g < memo_->num_groups(); ++g) {
    ColumnId ck = kInvalidColumnId, ok = kInvalidColumnId;
    for (const auto& b : memo_->group(g).output) {
      if (EqualsIgnoreCase(b.name, "c_custkey")) ck = b.id;
      if (EqualsIgnoreCase(b.name, "o_custkey")) ok = b.id;
    }
    if (ck != kInvalidColumnId && ok != kInvalidColumnId &&
        props.equivalence.AreEquivalent(ck, ok)) {
      equivalent = true;
    }
  }
  EXPECT_TRUE(equivalent);
}

TEST_F(InterestingPropsTest, GroupByColumnsAreInteresting) {
  InterestingProperties props = Derive(
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
  EXPECT_TRUE(ColumnIsInteresting(props, "o_custkey"));
}

TEST_F(InterestingPropsTest, SingleTableScanHasNoInterestingColumns) {
  InterestingProperties props =
      Derive("SELECT c_name FROM customer WHERE c_acctbal > 0");
  EXPECT_FALSE(ColumnIsInteresting(props, "c_name"));
  EXPECT_FALSE(ColumnIsInteresting(props, "c_acctbal"));
}

TEST_F(InterestingPropsTest, PropagatesThroughThreeWayJoin) {
  InterestingProperties props = Derive(
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey");
  EXPECT_TRUE(ColumnIsInteresting(props, "o_orderkey"));
  EXPECT_TRUE(ColumnIsInteresting(props, "l_orderkey"));
  EXPECT_TRUE(ColumnIsInteresting(props, "c_custkey"));
}

// ---------------------------------------------------------------------------
// SQL generation and DSQL splitting.
// ---------------------------------------------------------------------------

class DsqlTest : public ::testing::Test {
 protected:
  DsqlTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  DsqlPlan Generate(const std::string& sql) {
    auto c = CompilePdwQuery(catalog_, sql);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    auto d = GenerateDsql(*c->parallel.plan, c->output_names);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return std::move(d).ValueOrDie();
  }

  Catalog catalog_;
};

TEST_F(DsqlTest, LastStepIsAlwaysReturn) {
  DsqlPlan p = Generate("SELECT c_name FROM customer WHERE c_acctbal > 0");
  ASSERT_FALSE(p.steps.empty());
  EXPECT_EQ(p.steps.back().kind, DsqlStepKind::kReturn);
  for (size_t i = 0; i + 1 < p.steps.size(); ++i) {
    EXPECT_EQ(p.steps[i].kind, DsqlStepKind::kDms);
  }
}

TEST_F(DsqlTest, DmsStepCountMatchesPlanMoves) {
  auto c = CompilePdwQuery(
      catalog_,
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  ASSERT_TRUE(c.ok());
  auto d = GenerateDsql(*c->parallel.plan, c->output_names);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(static_cast<int>(d->steps.size()) - 1,
            CountMoves(*c->parallel.plan));
}

TEST_F(DsqlTest, GeneratedSqlReparses) {
  DsqlPlan p = Generate(
      "SELECT c_custkey, COUNT(*) AS cnt FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 100 "
      "GROUP BY c_custkey ORDER BY cnt DESC LIMIT 7");
  for (const DsqlStep& step : p.steps) {
    auto parsed = sql::ParseSelect(step.sql);
    EXPECT_TRUE(parsed.ok()) << step.sql << "\n" << parsed.status().ToString();
  }
}

TEST_F(DsqlTest, TempTablesAreChainedThroughSteps) {
  DsqlPlan p = Generate(
      "SELECT c_custkey, COUNT(*) FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_name, c_custkey");
  bool later_step_reads_temp = false;
  for (size_t i = 1; i < p.steps.size(); ++i) {
    if (p.steps[i].sql.find("[tempdb].[dbo].[TEMP_ID_") != std::string::npos) {
      later_step_reads_temp = true;
    }
  }
  if (p.steps.size() > 1) {
    EXPECT_TRUE(later_step_reads_temp);
  }
}

TEST_F(DsqlTest, KeywordAliasesAreMangled) {
  DsqlPlan p = Generate("SELECT SUM(o_totalprice) FROM orders");
  for (const DsqlStep& step : p.steps) {
    EXPECT_EQ(step.sql.find("AS sum,"), std::string::npos) << step.sql;
    auto parsed = sql::ParseSelect(step.sql);
    EXPECT_TRUE(parsed.ok()) << step.sql;
  }
}

}  // namespace
}  // namespace pdw
