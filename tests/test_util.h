#ifndef PDW_TESTS_TEST_UTIL_H_
#define PDW_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace pdw::testing {

/// Builds a TPC-H-shaped shell catalog (metadata + synthetic global stats,
/// no rows) with the paper's distribution choices: customer hash(c_custkey),
/// orders hash(o_orderkey), lineitem hash(l_orderkey), part hash(p_partkey),
/// partsupp hash(ps_partkey), supplier replicated, nation/region replicated.
/// `scale` multiplies the row counts (1.0 ~ a miniature SF with
/// lineitem = 60k rows).
inline Catalog MakeTpchShellCatalog(double scale = 1.0, int nodes = 8) {
  Catalog catalog(Topology{nodes});

  auto add = [&](const std::string& name, std::vector<ColumnDef> cols,
                 DistributionSpec dist, std::vector<std::string> pk,
                 double rows, std::vector<double> ndvs) {
    TableDef def;
    def.name = name;
    def.schema = Schema(std::move(cols));
    def.distribution = std::move(dist);
    def.primary_key = std::move(pk);
    def.stats.row_count = rows;
    double width = 0;
    for (int i = 0; i < def.schema.num_columns(); ++i) {
      const ColumnDef& c = def.schema.column(i);
      ColumnStats cs;
      cs.row_count = rows;
      cs.distinct_count = ndvs[static_cast<size_t>(i)];
      cs.avg_width = DefaultTypeWidth(c.type);
      width += cs.avg_width;
      def.stats.columns[c.name] = cs;
    }
    def.stats.avg_row_width = width;
    Status s = catalog.CreateTable(std::move(def));
    (void)s;
  };

  double sf = scale;
  add("customer",
      {{"c_custkey", TypeId::kInt, false},
       {"c_name", TypeId::kVarchar, false},
       {"c_address", TypeId::kVarchar, false},
       {"c_nationkey", TypeId::kInt, false},
       {"c_acctbal", TypeId::kDouble, false}},
      DistributionSpec::HashOn("c_custkey"), {"c_custkey"}, 1500 * sf,
      {1500 * sf, 1500 * sf, 1500 * sf, 25, 1400 * sf});
  add("orders",
      {{"o_orderkey", TypeId::kInt, false},
       {"o_custkey", TypeId::kInt, false},
       {"o_totalprice", TypeId::kDouble, false},
       {"o_orderdate", TypeId::kDate, false}},
      DistributionSpec::HashOn("o_orderkey"), {"o_orderkey"}, 15000 * sf,
      {15000 * sf, 1000 * sf, 14000 * sf, 2400});
  add("lineitem",
      {{"l_orderkey", TypeId::kInt, false},
       {"l_partkey", TypeId::kInt, false},
       {"l_suppkey", TypeId::kInt, false},
       {"l_quantity", TypeId::kDouble, false},
       {"l_extendedprice", TypeId::kDouble, false},
       {"l_discount", TypeId::kDouble, false},
       {"l_shipdate", TypeId::kDate, false},
       {"l_returnflag", TypeId::kVarchar, false},
       {"l_linestatus", TypeId::kVarchar, false}},
      DistributionSpec::HashOn("l_orderkey"), {}, 60000 * sf,
      {15000 * sf, 2000 * sf, 100 * sf, 50, 50000 * sf, 11, 2500, 3, 2});
  add("part",
      {{"p_partkey", TypeId::kInt, false},
       {"p_name", TypeId::kVarchar, false},
       {"p_retailprice", TypeId::kDouble, false}},
      DistributionSpec::HashOn("p_partkey"), {"p_partkey"}, 2000 * sf,
      {2000 * sf, 2000 * sf, 1800 * sf});
  add("partsupp",
      {{"ps_partkey", TypeId::kInt, false},
       {"ps_suppkey", TypeId::kInt, false},
       {"ps_availqty", TypeId::kInt, false},
       {"ps_supplycost", TypeId::kDouble, false}},
      DistributionSpec::HashOn("ps_partkey"), {"ps_partkey", "ps_suppkey"},
      8000 * sf, {2000 * sf, 100 * sf, 7000 * sf, 7500 * sf});
  add("supplier",
      {{"s_suppkey", TypeId::kInt, false},
       {"s_name", TypeId::kVarchar, false},
       {"s_address", TypeId::kVarchar, false},
       {"s_nationkey", TypeId::kInt, false}},
      DistributionSpec::Replicated(), {"s_suppkey"}, 100 * sf,
      {100 * sf, 100 * sf, 100 * sf, 25});
  add("nation",
      {{"n_nationkey", TypeId::kInt, false},
       {"n_name", TypeId::kVarchar, false},
       {"n_regionkey", TypeId::kInt, false}},
      DistributionSpec::Replicated(), {"n_nationkey"}, 25, {25, 25, 5});
  add("region",
      {{"r_regionkey", TypeId::kInt, false},
       {"r_name", TypeId::kVarchar, false}},
      DistributionSpec::Replicated(), {"r_regionkey"}, 5, {5, 5});
  return catalog;
}

}  // namespace pdw::testing

#endif  // PDW_TESTS_TEST_UTIL_H_
