#include <gtest/gtest.h>

#include "optimizer/serial_optimizer.h"
#include "test_util.h"

namespace pdw {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  CompilationResult Compile(const std::string& sql, MemoOptions opts = {}) {
    auto r = CompileQuery(catalog_, sql, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).ValueOrDie();
  }

  static int CountPlanKind(const PlanNode& n, PhysOpKind kind) {
    int c = n.kind == kind ? 1 : 0;
    for (const auto& ch : n.children) c += CountPlanKind(*ch, kind);
    return c;
  }

  /// Left-deep scan order of base tables in the plan.
  static void ScanOrder(const PlanNode& n, std::vector<std::string>* out) {
    for (const auto& c : n.children) ScanOrder(*c, out);
    if (n.kind == PhysOpKind::kTableScan) out->push_back(n.table_name);
  }

  Catalog catalog_;
};

TEST_F(OptimizerTest, SingleTableMemo) {
  CompilationResult r = Compile("SELECT c_name FROM customer WHERE c_custkey = 5");
  EXPECT_GE(r.memo->num_groups(), 2);
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kTableScan), 1);
}

TEST_F(OptimizerTest, TwoTableJoinEnumeratesBothOrders) {
  CompilationResult r = Compile(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  // Join group must contain at least two expressions (both orders).
  bool found_join_group_with_two = false;
  for (int g = 0; g < r.memo->num_groups(); ++g) {
    const Group& grp = r.memo->group(g);
    int joins = 0;
    for (const auto& e : grp.exprs) {
      if (e.op->kind() == LogicalOpKind::kJoin) ++joins;
    }
    if (joins >= 2) found_join_group_with_two = true;
  }
  EXPECT_TRUE(found_join_group_with_two) << r.memo->ToString();
}

TEST_F(OptimizerTest, CardinalityUsesEqualitySelectivity) {
  CompilationResult r = Compile(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  const Group& root = r.memo->group(r.memo->root());
  // |orders| = 15000, each order has one customer: join card ~ 15000.
  EXPECT_GT(root.cardinality, 5000);
  EXPECT_LT(root.cardinality, 50000);
}

TEST_F(OptimizerTest, SerialPlanJoinsSmallTablesFirst) {
  // The §2.5 example: the serial best plan joins customer with orders
  // first (smallest inputs), ignoring distribution; lineitem joins last.
  CompilationResult r = Compile(
      "SELECT c_name FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey");
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok());
  // The top join must separate {lineitem} from {customer, orders}: one of
  // its sides contains exactly the lineitem scan.
  const PlanNode* top = plan->get();
  while (top->kind != PhysOpKind::kHashJoin &&
         top->kind != PhysOpKind::kNestedLoopJoin) {
    ASSERT_FALSE(top->children.empty());
    top = top->children[0].get();
  }
  std::vector<std::string> left_scans, right_scans;
  ScanOrder(*top->children[0], &left_scans);
  ScanOrder(*top->children[1], &right_scans);
  bool lineitem_alone =
      (left_scans == std::vector<std::string>{"lineitem"}) ||
      (right_scans == std::vector<std::string>{"lineitem"});
  EXPECT_TRUE(lineitem_alone) << PlanTreeToString(**plan);
}

TEST_F(OptimizerTest, FiveWayJoinEnumerates) {
  // Reference a column of every table so redundant-join elimination keeps
  // all five.
  CompilationResult r = Compile(
      "SELECT c_name, p_name, s_name, l_quantity, o_totalprice "
      "FROM customer, orders, lineitem, part, supplier "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
      "AND l_partkey = p_partkey AND l_suppkey = s_suppkey");
  EXPECT_FALSE(r.memo->budget_exhausted());
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kTableScan), 5);
  EXPECT_GT(r.memo->num_exprs(), 20u);
}

TEST_F(OptimizerTest, RedundantJoinEliminationShrinksPlan) {
  // part and supplier provide no referenced columns and join on their full
  // primary keys: both are eliminated before the memo is built.
  CompilationResult r = Compile(
      "SELECT l_quantity FROM lineitem, part, supplier "
      "WHERE l_partkey = p_partkey AND l_suppkey = s_suppkey");
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kTableScan), 1);
}

TEST_F(OptimizerTest, BudgetFallsBackToSeededChain) {
  MemoOptions opts;
  opts.expr_budget = 10;  // absurdly small: force the timeout path
  CompilationResult r = Compile(
      "SELECT c_name FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey",
      opts);
  EXPECT_TRUE(r.memo->budget_exhausted());
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kTableScan), 3);
}

TEST_F(OptimizerTest, SemiJoinGetsJoinDistinctAlternative) {
  CompilationResult r = Compile(
      "SELECT s_name FROM supplier WHERE s_suppkey IN "
      "(SELECT ps_suppkey FROM partsupp)");
  // Somewhere in the memo there must be an Aggregate (distinct) expression
  // introduced by the semi-join -> join + group-by rule.
  bool found_distinct = false;
  for (int g = 0; g < r.memo->num_groups(); ++g) {
    for (const auto& e : r.memo->group(g).exprs) {
      if (e.op->kind() == LogicalOpKind::kAggregate) {
        const auto& a = static_cast<const LogicalAggregate&>(*e.op);
        if (a.aggregates().empty() && !a.group_by().empty()) {
          found_distinct = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_distinct) << r.memo->ToString();
}

TEST_F(OptimizerTest, AggregationQueryCompiles) {
  CompilationResult r = Compile(
      "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey");
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kHashAggregate), 1);
  // Aggregate output cardinality ~ NDV of o_custkey (1000).
  const Group& root = r.memo->group(r.memo->root());
  EXPECT_NEAR(root.cardinality, 1000, 300);
}

TEST_F(OptimizerTest, SortAndLimitSurvive) {
  CompilationResult r = Compile(
      "SELECT c_name FROM customer ORDER BY c_name LIMIT 10");
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kSort), 1);
  EXPECT_EQ(CountPlanKind(**plan, PhysOpKind::kLimit), 1);
  EXPECT_EQ((*plan)->kind, PhysOpKind::kLimit);
}

TEST_F(OptimizerTest, Q20Compiles) {
  CompilationResult r = Compile(
      "SELECT s_name, s_address FROM supplier, nation "
      "WHERE s_suppkey IN ("
      "  SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN ("
      "    SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') "
      "  AND ps_availqty > ("
      "    SELECT 0.5 * SUM(l_quantity) FROM lineitem "
      "    WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey "
      "    AND l_shipdate >= DATE '1994-01-01' "
      "    AND l_shipdate < DATEADD(year, 1, '1994-01-01'))) "
      "AND s_nationkey = n_nationkey AND n_name = 'CANADA' "
      "ORDER BY s_name");
  auto plan = ExtractBestSerialPlan(r.memo.get());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(CountPlanKind(**plan, PhysOpKind::kTableScan), 4);
}

TEST_F(OptimizerTest, StatsContextNdv) {
  CompilationResult r = Compile("SELECT o_custkey FROM orders");
  const LogicalOp* get = r.normalized.get();
  while (get->kind() != LogicalOpKind::kGet) get = get->children()[0].get();
  for (const auto& b : static_cast<const LogicalGet*>(get)->bindings()) {
    if (b.name == "o_custkey") {
      EXPECT_NEAR(r.stats->Ndv(b.id, 0), 1000, 1);
    }
    if (b.name == "o_orderkey") {
      EXPECT_NEAR(r.stats->Ndv(b.id, 0), 15000, 1);
    }
  }
}

}  // namespace
}  // namespace pdw
