#include <gtest/gtest.h>

#include "pdw/compiler.h"
#include "appliance/appliance.h"
#include "pdw/top_down.h"
#include "test_util.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

/// The paper remarks (§3.2) that a top-down enumeration is equally
/// applicable: both strategies search the same space with the same cost
/// model, so they must agree on the optimal plan cost for every query.
class TopDownTest : public ::testing::Test {
 protected:
  TopDownTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  void ExpectAgreement(const std::string& sql) {
    PdwCompilerOptions opts;
    opts.build_baseline = false;
    auto comp = CompilePdwQuery(catalog_, sql, opts);
    ASSERT_TRUE(comp.ok()) << sql << "\n" << comp.status().ToString();
    double bottom_up = comp->parallel.cost;

    TopDownPdwOptimizer top_down(comp->imported.memo.get(),
                                 catalog_.topology());
    auto td = top_down.OptimalCost();
    ASSERT_TRUE(td.ok()) << sql << "\n" << td.status().ToString();
    EXPECT_NEAR(*td, bottom_up, 1e-12 + bottom_up * 1e-9) << sql;
    EXPECT_GT(top_down.stats().states_computed, 0u);
  }

  Catalog catalog_;
};

TEST_F(TopDownTest, SingleTable) {
  ExpectAgreement("SELECT c_name FROM customer WHERE c_acctbal > 100");
}

TEST_F(TopDownTest, IncompatibleJoin) {
  ExpectAgreement(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 1000");
}

TEST_F(TopDownTest, CollocatedJoin) {
  ExpectAgreement(
      "SELECT o_totalprice, l_quantity FROM orders, lineitem "
      "WHERE o_orderkey = l_orderkey");
}

TEST_F(TopDownTest, ThreeWayJoin) {
  ExpectAgreement(
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey");
}

TEST_F(TopDownTest, TwoPhaseAggregate) {
  ExpectAgreement(
      "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey");
}

TEST_F(TopDownTest, ScalarAggregate) {
  ExpectAgreement("SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10");
}

TEST_F(TopDownTest, TopN) {
  ExpectAgreement(
      "SELECT o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 5");
}

TEST_F(TopDownTest, SemiJoin) {
  ExpectAgreement(
      "SELECT s_name FROM supplier WHERE s_suppkey IN "
      "(SELECT ps_suppkey FROM partsupp)");
}

TEST_F(TopDownTest, UnionAll) {
  ExpectAgreement(
      "SELECT o_orderkey FROM orders UNION ALL "
      "SELECT l_orderkey FROM lineitem");
}

TEST(TopDownTpchTest, WholeTpchSuite) {
  // The full TPC-H schema (the mini test catalog lacks several columns).
  Appliance appliance(Topology{8});
  ASSERT_TRUE(tpch::CreateTpchTables(&appliance).ok());
  tpch::TpchConfig cfg;
  cfg.scale = 0.02;
  ASSERT_TRUE(tpch::LoadTpch(&appliance, cfg).ok());
  for (const auto& q : tpch::Queries()) {
    SCOPED_TRACE(q.name);
    PdwCompilerOptions opts;
    opts.build_baseline = false;
    auto comp = CompilePdwQuery(appliance.shell(), q.sql, opts);
    ASSERT_TRUE(comp.ok()) << comp.status().ToString();
    TopDownPdwOptimizer top_down(comp->imported.memo.get(),
                                 appliance.shell().topology());
    auto td = top_down.OptimalCost();
    ASSERT_TRUE(td.ok()) << td.status().ToString();
    EXPECT_NEAR(*td, comp->parallel.cost,
                1e-12 + comp->parallel.cost * 1e-9);
  }
}

}  // namespace
}  // namespace pdw
