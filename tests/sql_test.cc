#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace pdw::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT c_custkey FROM Customer WHERE x >= 10.5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].type, TokenType::kIdentifier);
  EXPECT_TRUE((*toks)[4].IsKeyword("WHERE"));
  EXPECT_TRUE((*toks)[6].IsOperator(">="));
  EXPECT_EQ((*toks)[7].text, "10.5");
}

TEST(LexerTest, StringsAndComments) {
  auto toks = Tokenize("-- comment\nSELECT 'it''s' /* block */ , [my col]");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].type, TokenType::kString);
  EXPECT_EQ((*toks)[1].text, "it's");
  EXPECT_EQ((*toks)[3].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[3].text, "my col");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT /* unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT a ! b").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT c_custkey, c_name FROM customer");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items.size(), 2u);
  EXPECT_EQ((*stmt)->from.size(), 1u);
}

TEST(ParserTest, WhereAndOperators) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE a = 1 AND b <> 2 OR NOT c < 3");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE((*stmt)->where, nullptr);
  // OR binds loosest.
  auto* top = static_cast<BinaryExpr*>((*stmt)->where.get());
  EXPECT_EQ(top->op, BinaryOp::kOr);
}

TEST(ParserTest, JoinSyntax) {
  auto stmt = ParseSelect(
      "SELECT c.c_name FROM customer c INNER JOIN orders o "
      "ON c.c_custkey = o.o_custkey LEFT JOIN lineitem l ON "
      "o.o_orderkey = l.l_orderkey");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0]->kind, TableRefKind::kJoin);
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  auto stmt = ParseSelect(
      "SELECT o_custkey, SUM(o_totalprice) total FROM orders "
      "GROUP BY o_custkey HAVING SUM(o_totalprice) > 100 "
      "ORDER BY total DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  EXPECT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_FALSE((*stmt)->order_by[0].ascending);
  EXPECT_EQ((*stmt)->limit, 10);
}

TEST(ParserTest, TopN) {
  auto stmt = ParseSelect("SELECT TOP 5 a FROM t ORDER BY a");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->limit, 5);
}

TEST(ParserTest, InSubqueryAndExists) {
  auto stmt = ParseSelect(
      "SELECT s_name FROM supplier WHERE s_suppkey IN "
      "(SELECT ps_suppkey FROM partsupp) AND EXISTS "
      "(SELECT o_orderkey FROM orders)");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, ScalarSubqueryComparison) {
  auto stmt = ParseSelect(
      "SELECT * FROM partsupp WHERE ps_availqty > "
      "(SELECT 0.5 * SUM(l_quantity) FROM lineitem WHERE "
      "l_partkey = ps_partkey)");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, BetweenInListLikeIsNull) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3) "
      "AND c LIKE 'forest%' AND d IS NOT NULL AND e NOT LIKE 'x%'");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, DateLiteralAndDateAdd) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE d >= DATE '1994-01-01' AND "
      "d < DATEADD(year, 1, '1994-01-01')");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, CaseAndCast) {
  auto stmt = ParseSelect(
      "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, "
      "CAST(b AS DECIMAL(15, 2)) FROM t");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, DerivedTable) {
  auto stmt = ParseSelect(
      "SELECT x.a FROM (SELECT a FROM t GROUP BY a) AS x");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from[0]->kind, TableRefKind::kDerived);
}

TEST(ParserTest, BracketedNames) {
  auto stmt = ParseSelect(
      "SELECT T1_1.a FROM [tpch].[dbo].[orders] AS T1_1");
  ASSERT_TRUE(stmt.ok());
  auto* base = static_cast<BaseTableRef*>((*stmt)->from[0].get());
  EXPECT_EQ(base->table, "orders");
  EXPECT_EQ(base->alias, "T1_1");
}

TEST(ParserTest, CreateTableWithDistribution) {
  auto stmt = ParseStatement(
      "CREATE TABLE orders (o_orderkey INT NOT NULL, o_custkey INT, "
      "o_totalprice DECIMAL(15,2), o_orderdate DATE) "
      "WITH (DISTRIBUTION = HASH(o_orderkey))");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmt->create_table->name, "orders");
  EXPECT_EQ(stmt->create_table->schema.num_columns(), 4);
  EXPECT_EQ(stmt->create_table->distribution.layout,
            pdw::TableLayout::kHashDistributed);
  EXPECT_EQ(stmt->create_table->distribution.columns[0], "o_orderkey");
  EXPECT_FALSE(stmt->create_table->schema.column(0).nullable);
}

TEST(ParserTest, CreateReplicatedTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE nation (n_nationkey INT, n_name VARCHAR(25)) "
      "WITH (DISTRIBUTION = REPLICATE)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->create_table->distribution.is_replicated());
}

TEST(ParserTest, InsertValues) {
  auto stmt = ParseStatement(
      "INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b', NULL)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[0].size(), 3u);
}

TEST(ParserTest, DropTable) {
  auto stmt = ParseStatement("DROP TABLE t;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kDropTable);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP").ok());
  EXPECT_FALSE(ParseStatement("UPDATE t SET a = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage here").ok());
  EXPECT_FALSE(ParseSelect("SELECT a, FROM t").ok());
}

TEST(ParserTest, Q20ShapeParses) {
  const char* q20 =
      "SELECT s_name, s_address FROM supplier, nation "
      "WHERE s_suppkey IN ("
      "  SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN ("
      "    SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') "
      "  AND ps_availqty > ("
      "    SELECT 0.5 * SUM(l_quantity) FROM lineitem "
      "    WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey "
      "    AND l_shipdate >= DATE '1994-01-01' "
      "    AND l_shipdate < DATEADD(year, 1, '1994-01-01'))) "
      "AND s_nationkey = n_nationkey AND n_name = 'CANADA' "
      "ORDER BY s_name";
  auto stmt = ParseSelect(q20);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, RoundTripToString) {
  auto stmt = ParseSelect(
      "SELECT a, SUM(b) AS s FROM t WHERE c = 1 GROUP BY a ORDER BY a");
  ASSERT_TRUE(stmt.ok());
  std::string text = (*stmt)->ToString();
  auto again = ParseSelect(text);
  ASSERT_TRUE(again.ok()) << text << "\n" << again.status().ToString();
  EXPECT_EQ((*again)->ToString(), text);
}

}  // namespace
}  // namespace pdw::sql
