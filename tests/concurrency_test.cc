// Concurrent-session and plan-cache behavior of the unified Run API: many
// threads firing distributed queries at one appliance must all match the
// single-node reference, with and without the plan cache, and pooled
// execution must return exactly what the serial node-by-node loop returns.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "common/thread_pool.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

std::unique_ptr<Appliance> MakeLoadedAppliance(int nodes, double scale) {
  auto appliance = std::make_unique<Appliance>(Topology{nodes});
  EXPECT_TRUE(tpch::CreateTpchTables(appliance.get()).ok());
  tpch::TpchConfig cfg;
  cfg.scale = scale;
  EXPECT_TRUE(tpch::LoadTpch(appliance.get(), cfg).ok());
  return appliance;
}

const char* kQueries[] = {
    "SELECT c_custkey, c_name FROM customer WHERE c_acctbal > 5000",
    "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s FROM orders "
    "GROUP BY o_custkey",
    "SELECT c_name, o_totalprice FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 200000",
    "SELECT COUNT(*) AS c FROM lineitem, orders WHERE l_orderkey = o_orderkey",
    "SELECT s_name, n_name FROM supplier, nation "
    "WHERE s_nationkey = n_nationkey",
    "SELECT l_returnflag, AVG(l_quantity) AS aq FROM lineitem "
    "GROUP BY l_returnflag",
};

// --- parallel (pooled) execution equals the serial loop ---

TEST(ParallelExecutionTest, PooledMatchesSerialLoop) {
  auto appliance = MakeLoadedAppliance(4, 0.05);
  Session session = appliance->Connect();
  for (const char* sql : kQueries) {
    QueryOptions serial;
    serial.execute.max_parallel_nodes = 1;
    auto s = session.Run(sql, serial);
    ASSERT_TRUE(s.ok()) << sql << "\n" << s.status().ToString();
    auto p = session.Run(sql);  // default: full fan-out
    ASSERT_TRUE(p.ok()) << sql << "\n" << p.status().ToString();
    EXPECT_TRUE(RowSetsEqual(s->rows, p->rows)) << sql;
    auto ref = appliance->ExecuteReference(sql);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(RowSetsEqual(p->rows, ref->rows)) << sql;
  }
}

TEST(ParallelExecutionTest, StepProfileRecordsPerNodeTimings) {
  auto appliance = MakeLoadedAppliance(4, 0.05);
  Session session = appliance->Connect();
  auto r = session.Run(
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->profile.steps.empty());
  // The Return step ran on all 4 compute nodes; every node reported a time.
  const obs::StepProfile& last = r->profile.steps.back();
  EXPECT_EQ(last.node_seconds.size(), 4u);
}

// --- N session threads, no cache: every result matches the reference ---

TEST(ConcurrencyTest, ConcurrentSessionsMatchReference) {
  auto appliance = MakeLoadedAppliance(4, 0.05);
  Session session = appliance->Connect();
  constexpr int kThreads = 8;
  constexpr int kReps = 4;

  // Reference answers, computed single-threaded up front.
  std::vector<RowVector> expected;
  for (const char* sql : kQueries) {
    auto ref = appliance->ExecuteReference(sql);
    ASSERT_TRUE(ref.ok()) << sql;
    expected.push_back(ref->rows);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        size_t qi = static_cast<size_t>(t + rep) % std::size(kQueries);
        auto r = session.Run(kQueries[qi]);
        if (!r.ok() || !RowSetsEqual(r->rows, expected[qi])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // No leaked temp tables on any node after the storm.
  for (int n = 0; n < appliance->num_compute_nodes(); ++n) {
    for (const std::string& t :
         appliance->compute_node(n).catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos) << t;
    }
  }
}

// --- same storm with the plan cache on: results identical, hits recorded ---

TEST(ConcurrencyTest, ConcurrentSessionsWithPlanCache) {
  auto appliance = MakeLoadedAppliance(4, 0.05);
  Session session = appliance->Connect();
  constexpr int kThreads = 8;
  constexpr int kReps = 4;

  std::vector<RowVector> expected;
  for (const char* sql : kQueries) {
    auto ref = appliance->ExecuteReference(sql);
    ASSERT_TRUE(ref.ok()) << sql;
    expected.push_back(ref->rows);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryOptions opts;
      opts.compile.use_plan_cache = true;
      for (int rep = 0; rep < kReps; ++rep) {
        size_t qi = static_cast<size_t>(t + rep) % std::size(kQueries);
        auto r = session.Run(kQueries[qi], opts);
        if (!r.ok() || !RowSetsEqual(r->rows, expected[qi])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  PlanCache::Stats stats = appliance->plan_cache().stats();
  // kThreads * kReps runs over |kQueries| distinct texts: most runs hit.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(appliance->plan_cache().size(), std::size(kQueries));
}

// --- plan cache unit behavior through the Run API ---

TEST(PlanCacheTest, RepeatRunHitsCache) {
  auto appliance = MakeLoadedAppliance(4, 0.02);
  Session session = appliance->Connect();
  QueryOptions opts;
  opts.compile.use_plan_cache = true;
  const char* sql = "SELECT COUNT(*) AS c FROM orders";

  auto first = session.Run(sql, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto second = session.Run(sql, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_TRUE(second->profile.cache_hit);
  EXPECT_TRUE(RowSetsEqual(first->rows, second->rows));

  // Normalization: whitespace and keyword case don't miss.
  auto reformatted =
      session.Run("select   COUNT(*)  as C\nfrom ORDERS", opts);
  ASSERT_TRUE(reformatted.ok());
  EXPECT_TRUE(reformatted->cache_hit);

  PlanCache::Stats stats = appliance->plan_cache().stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(PlanCacheTest, LoadRowsInvalidatesPlansReadingTheTable) {
  auto appliance = MakeLoadedAppliance(4, 0.02);
  Session session = appliance->Connect();
  QueryOptions opts;
  opts.compile.use_plan_cache = true;
  const char* orders_sql = "SELECT COUNT(*) AS c FROM orders";
  const char* nation_sql = "SELECT n_name FROM nation WHERE n_regionkey = 2";

  ASSERT_TRUE(session.Run(orders_sql, opts).ok());
  ASSERT_TRUE(session.Run(nation_sql, opts).ok());

  // Loading into orders bumps its statistics version...
  auto def = appliance->shell().GetTable("orders");
  ASSERT_TRUE(def.ok());
  Row extra;
  extra.push_back(Datum::Int(999983));
  extra.push_back(Datum::Int(1));
  extra.push_back(Datum::Double(42.0));
  extra.push_back(Datum::Date(9000));
  extra.push_back(Datum::Varchar("1-URGENT"));
  extra.push_back(Datum::Int(0));
  ASSERT_TRUE(appliance->LoadRows("orders", {extra}).ok());

  // ...so the orders plan recompiles (and sees the new row), while the
  // nation plan is untouched and still hits.
  auto after = session.Run(orders_sql, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  auto ref = appliance->ExecuteReference(orders_sql);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(RowSetsEqual(after->rows, ref->rows));

  auto nation_again = session.Run(nation_sql, opts);
  ASSERT_TRUE(nation_again.ok());
  EXPECT_TRUE(nation_again->cache_hit);

  EXPECT_GE(appliance->plan_cache().stats().invalidations, 1u);
}

TEST(PlanCacheTest, RefreshStatisticsInvalidates) {
  auto appliance = MakeLoadedAppliance(4, 0.02);
  Session session = appliance->Connect();
  QueryOptions opts;
  opts.compile.use_plan_cache = true;
  const char* sql = "SELECT c_name FROM customer WHERE c_acctbal > 5000";

  ASSERT_TRUE(session.Run(sql, opts).ok());
  ASSERT_TRUE(appliance->RefreshStatistics("customer").ok());
  auto after = session.Run(sql, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
}

TEST(PlanCacheTest, DistinctCompilerOptionsGetDistinctEntries) {
  auto appliance = MakeLoadedAppliance(4, 0.02);
  Session session = appliance->Connect();
  const char* sql =
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey";

  QueryOptions a;
  a.compile.use_plan_cache = true;
  QueryOptions b = a;
  b.compile.compiler.pdw.enable_trim_move = !b.compile.compiler.pdw.enable_trim_move;

  ASSERT_TRUE(session.Run(sql, a).ok());
  auto with_b = session.Run(sql, b);
  ASSERT_TRUE(with_b.ok());
  EXPECT_FALSE(with_b->cache_hit);  // different fingerprint, distinct entry
  EXPECT_EQ(appliance->plan_cache().size(), 2u);

  auto again_a = session.Run(sql, a);
  ASSERT_TRUE(again_a.ok());
  EXPECT_TRUE(again_a->cache_hit);
  auto again_b = session.Run(sql, b);
  ASSERT_TRUE(again_b.ok());
  EXPECT_TRUE(again_b->cache_hit);
}

TEST(PlanCacheTest, LruEvictsOldestEntry) {
  PlanCache cache(2);
  CachedDsqlPlan plan;
  cache.Insert("q1", "f", plan);
  cache.Insert("q2", "f", plan);
  EXPECT_TRUE(cache.Lookup("q1", "f").has_value());  // q1 now most recent
  cache.Insert("q3", "f", plan);                     // evicts q2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("q2", "f").has_value());
  EXPECT_TRUE(cache.Lookup("q1", "f").has_value());
  EXPECT_TRUE(cache.Lookup("q3", "f").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlanCacheTest, NormalizePreservesLiteralCase) {
  EXPECT_EQ(NormalizeSqlForPlanCache("SELECT  N_NAME\nFROM nation "
                                     "WHERE n_name = 'CANADA'"),
            "select n_name from nation where n_name = 'CANADA'");
}

// --- the shared worker pool itself ---

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  pool.ParallelFor(100, [&](int i) {
    counts[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int) {
    pool.ParallelFor(4, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, MaxParallelismOneIsSerial) {
  ThreadPool pool(4);
  std::vector<int> order;
  pool.ParallelFor(
      10, [&](int i) { order.push_back(i); },  // no lock: must be serial
      /*max_parallelism=*/1);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace pdw
