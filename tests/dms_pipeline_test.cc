// Differential and concurrency coverage of the streaming columnar DMS
// pipeline: for every move kind, the pipelined columnar path must land
// exactly the rows the legacy materialized row path lands (same slots, same
// order), with rows_moved identical and per-component metrics populated —
// including empty inputs, single-row sources, one-row batches, variant
// columns, and concurrent sessions hammering one appliance.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "common/thread_pool.h"
#include "dms/dms_service.h"
#include "dms/wire_format.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

constexpr int kNodes = 4;

std::vector<Datum> DatumPool() {
  return {Datum::Int(7),
          Datum::Int(-3),
          Datum::Int(1LL << 40),
          Datum::Double(0.5),
          Datum::Double(16.0),
          Datum::Varchar(""),
          Datum::Varchar("abc"),
          Datum::Varchar(std::string(200, 'z')),
          Datum::Bool(false),
          Datum::Bool(true),
          Datum::Date(12345),
          Datum::Null()};
}

std::vector<RowVector> RandomSlots(uint32_t seed, int rows_per_node,
                                   size_t arity, bool include_control) {
  std::mt19937 rng(seed);
  const std::vector<Datum> pool = DatumPool();
  std::vector<RowVector> slots(static_cast<size_t>(kNodes + 1));
  int limit = include_control ? kNodes + 1 : kNodes;
  for (int n = 0; n < limit; ++n) {
    for (int r = 0; r < rows_per_node; ++r) {
      Row row;
      // Column 0 stays a non-null routing-friendly key.
      row.push_back(Datum::Int(static_cast<int64_t>(rng() % 1000)));
      for (size_t c = 1; c < arity; ++c) {
        row.push_back(pool[rng() % pool.size()]);
      }
      slots[static_cast<size_t>(n)].push_back(std::move(row));
    }
  }
  return slots;
}

const DmsOpKind kAllKinds[] = {
    DmsOpKind::kShuffle,        DmsOpKind::kPartitionMove,
    DmsOpKind::kControlNodeMove, DmsOpKind::kBroadcastMove,
    DmsOpKind::kTrimMove,        DmsOpKind::kReplicatedBroadcast,
    DmsOpKind::kRemoteCopyToSingle,
};

std::vector<RowVector> SlotsFor(DmsOpKind kind, uint32_t seed, int rows) {
  switch (kind) {
    case DmsOpKind::kControlNodeMove: {
      // Source is the control node only.
      std::vector<RowVector> slots(static_cast<size_t>(kNodes + 1));
      auto all = RandomSlots(seed, rows, 4, false);
      slots[kNodes] = std::move(all[0]);
      return slots;
    }
    case DmsOpKind::kReplicatedBroadcast: {
      // One replica copy is read, from node 0.
      std::vector<RowVector> slots(static_cast<size_t>(kNodes + 1));
      auto all = RandomSlots(seed, rows, 4, false);
      slots[0] = std::move(all[0]);
      return slots;
    }
    default:
      return RandomSlots(seed, rows, 4, false);
  }
}

void ExpectSlotsIdentical(const std::vector<RowVector>& a,
                          const std::vector<RowVector>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size()) << "slot " << s;
    for (size_t r = 0; r < a[s].size(); ++r) {
      ASSERT_EQ(a[s][r].size(), b[s][r].size()) << "slot " << s << " row " << r;
      for (size_t c = 0; c < a[s][r].size(); ++c) {
        EXPECT_EQ(a[s][r][c].is_null(), b[s][r][c].is_null())
            << "slot " << s << " row " << r << " col " << c;
        if (!a[s][r][c].is_null()) {
          EXPECT_EQ(a[s][r][c].Compare(b[s][r][c]), 0)
              << "slot " << s << " row " << r << " col " << c;
        }
      }
    }
  }
}

class DmsPipelineTest : public ::testing::Test {
 protected:
  DmsService dms_{kNodes};

  void RunDifferential(DmsOpKind kind, uint32_t seed, int rows, int batch_size,
                       ThreadPool* pool) {
    std::vector<int> ordinals = {0};
    DmsRunMetrics row_m, col_m;
    DmsExecOptions row_opts;
    row_opts.codec = DmsCodec::kRow;
    auto row_out = dms_.Execute(kind, SlotsFor(kind, seed, rows), ordinals,
                                &row_m, pool, row_opts);
    ASSERT_TRUE(row_out.ok()) << row_out.status().ToString();
    DmsExecOptions col_opts;
    col_opts.codec = DmsCodec::kColumnar;
    col_opts.batch_size = batch_size;
    auto col_out = dms_.Execute(kind, SlotsFor(kind, seed, rows), ordinals,
                                &col_m, pool, col_opts);
    ASSERT_TRUE(col_out.ok()) << col_out.status().ToString();
    ExpectSlotsIdentical(*row_out, *col_out);
    EXPECT_EQ(row_m.rows_moved, col_m.rows_moved) << DmsOpKindToString(kind);
    if (rows > 0) {
      // Every component must stay metered on the pipelined path.
      EXPECT_GT(col_m.reader.bytes, 0) << DmsOpKindToString(kind);
      EXPECT_GT(col_m.writer.bytes, 0) << DmsOpKindToString(kind);
      EXPECT_GT(col_m.bulkcopy.bytes, 0) << DmsOpKindToString(kind);
      if (kind != DmsOpKind::kTrimMove) {
        EXPECT_GT(col_m.network.bytes, 0) << DmsOpKindToString(kind);
      } else {
        EXPECT_EQ(col_m.network.bytes, 0);  // trim never crosses the wire
      }
    }
  }
};

TEST_F(DmsPipelineTest, AllKindsMatchRowCodecSerial) {
  uint32_t seed = 100;
  for (DmsOpKind kind : kAllKinds) {
    RunDifferential(kind, seed++, 300, 0, nullptr);
  }
}

TEST_F(DmsPipelineTest, AllKindsMatchRowCodecPooled) {
  uint32_t seed = 200;
  for (DmsOpKind kind : kAllKinds) {
    RunDifferential(kind, seed++, 300, 0, &ThreadPool::Global());
  }
}

TEST_F(DmsPipelineTest, SingleRowBatchesMatch) {
  // batch_size=1 — the PDW_BATCH_SIZE=1 slicing, one wire message per row.
  uint32_t seed = 300;
  for (DmsOpKind kind : kAllKinds) {
    RunDifferential(kind, seed++, 17, 1, &ThreadPool::Global());
  }
}

TEST_F(DmsPipelineTest, EmptyInputsMatch) {
  for (DmsOpKind kind : kAllKinds) {
    RunDifferential(kind, 400, 0, 0, nullptr);
    RunDifferential(kind, 401, 0, 0, &ThreadPool::Global());
  }
}

TEST_F(DmsPipelineTest, SingleRowSourcesMatch) {
  uint32_t seed = 500;
  for (DmsOpKind kind : kAllKinds) {
    RunDifferential(kind, seed++, 1, 0, nullptr);
  }
}

TEST_F(DmsPipelineTest, TinyQueueStillCompletes) {
  // queue_capacity=1 forces constant backpressure; push-with-help must keep
  // the pipeline moving under any pool size.
  DmsRunMetrics m;
  DmsExecOptions opts;
  opts.codec = DmsCodec::kColumnar;
  opts.batch_size = 8;
  opts.queue_capacity = 1;
  auto out = dms_.Execute(DmsOpKind::kShuffle, SlotsFor(DmsOpKind::kShuffle, 9, 500),
                          {0}, &m, &ThreadPool::Global(), opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(m.rows_moved, 500.0 * kNodes);
}

TEST_F(DmsPipelineTest, VariantColumnsSurviveTheWire) {
  // A column mixing INT and DOUBLE promotes to variant storage; the wire
  // codec's per-Datum escape hatch must round-trip it exactly.
  std::vector<RowVector> slots(static_cast<size_t>(kNodes + 1));
  for (int n = 0; n < kNodes; ++n) {
    for (int i = 0; i < 50; ++i) {
      slots[static_cast<size_t>(n)].push_back(
          {Datum::Int(i), i % 2 == 0 ? Datum::Int(i * 10)
                                     : Datum::Double(i * 0.25)});
    }
  }
  auto slots_copy = slots;
  DmsExecOptions row_opts, col_opts;
  row_opts.codec = DmsCodec::kRow;
  col_opts.codec = DmsCodec::kColumnar;
  auto row_out = dms_.Execute(DmsOpKind::kShuffle, std::move(slots), {0},
                              nullptr, nullptr, row_opts);
  auto col_out = dms_.Execute(DmsOpKind::kShuffle, std::move(slots_copy), {0},
                              nullptr, nullptr, col_opts);
  ASSERT_TRUE(row_out.ok());
  ASSERT_TRUE(col_out.ok());
  ExpectSlotsIdentical(*row_out, *col_out);
}

TEST_F(DmsPipelineTest, ProducerErrorPropagates) {
  std::vector<DmsProducer> producers(static_cast<size_t>(kNodes + 1));
  producers[0] = []() -> Result<RowVector> {
    return RowVector{{Datum::Int(1)}};
  };
  producers[1] = []() -> Result<RowVector> {
    return Status::ExecutionError("node 1 exploded");
  };
  auto out = dms_.ExecutePipelined(DmsOpKind::kShuffle, std::move(producers),
                                   {0}, nullptr, &ThreadPool::Global());
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().ToString().find("node 1 exploded"), std::string::npos);
}

// --- appliance-level differential: whole queries, row vs columnar DMS ---

std::unique_ptr<Appliance> MakeLoadedAppliance(int nodes, double scale) {
  auto appliance = std::make_unique<Appliance>(Topology{nodes});
  EXPECT_TRUE(tpch::CreateTpchTables(appliance.get()).ok());
  tpch::TpchConfig cfg;
  cfg.scale = scale;
  EXPECT_TRUE(tpch::LoadTpch(appliance.get(), cfg).ok());
  return appliance;
}

const char* kDmsQueries[] = {
    // Shuffle: group-by on a non-distribution column.
    "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s FROM orders "
    "GROUP BY o_custkey",
    // Shuffle + join.
    "SELECT c_name, o_totalprice FROM customer, orders "
    "WHERE c_custkey = o_custkey AND o_totalprice > 150000",
    // Broadcast-heavy join.
    "SELECT s_name, n_name FROM supplier, nation "
    "WHERE s_nationkey = n_nationkey",
    // Aggregation needing a final control-node move.
    "SELECT COUNT(*) AS c FROM lineitem, orders WHERE l_orderkey = o_orderkey",
};

TEST(DmsPipelineApplianceTest, QueriesMatchAcrossCodecs) {
  auto appliance = MakeLoadedAppliance(4, 0.05);
  Session session = appliance->Connect();
  for (const char* sql : kDmsQueries) {
    QueryOptions row_opts;
    row_opts.execute.dms_codec = DmsCodec::kRow;
    auto row_r = session.Run(sql, row_opts);
    ASSERT_TRUE(row_r.ok()) << sql << "\n" << row_r.status().ToString();
    QueryOptions col_opts;
    col_opts.execute.dms_codec = DmsCodec::kColumnar;
    auto col_r = session.Run(sql, col_opts);
    ASSERT_TRUE(col_r.ok()) << sql << "\n" << col_r.status().ToString();
    EXPECT_TRUE(RowSetsEqual(row_r->rows, col_r->rows)) << sql;
    EXPECT_EQ(row_r->dms_metrics.rows_moved, col_r->dms_metrics.rows_moved)
        << sql;
    auto ref = appliance->ExecuteReference(sql);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(RowSetsEqual(col_r->rows, ref->rows)) << sql;
  }
}

TEST(DmsPipelineApplianceTest, PipelinedStepProfileStaysPopulated) {
  // EXPLAIN ANALYZE and λ calibration read per-component DMS metrics; the
  // pipelined path must keep them flowing into the step profile.
  auto appliance = MakeLoadedAppliance(4, 0.05);
  Session session = appliance->Connect();
  QueryOptions opts;
  opts.execute.dms_codec = DmsCodec::kColumnar;
  auto r = session.Run(
      "SELECT o_custkey, COUNT(*) AS c FROM orders GROUP BY o_custkey", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  bool saw_dms = false;
  for (const obs::StepProfile& sp : r->profile.steps) {
    if (sp.kind != "DMS") continue;
    saw_dms = true;
    EXPECT_GT(sp.reader.bytes, 0);
    EXPECT_GT(sp.writer.bytes, 0);
    EXPECT_GT(sp.bulkcopy.bytes, 0);
    EXPECT_GT(sp.rows_moved, 0);
    EXPECT_FALSE(sp.node_seconds.empty());
  }
  EXPECT_TRUE(saw_dms);
  EXPECT_GT(r->dms_metrics.wall_seconds, 0);
}

// --- concurrent sessions over the pipelined DMS (the TSan storm) ---

TEST(DmsPipelineConcurrencyTest, ConcurrentSessionsOverPipelinedDms) {
  auto appliance = MakeLoadedAppliance(4, 0.03);
  Session session = appliance->Connect();
  constexpr int kThreads = 8;
  constexpr int kReps = 3;

  std::vector<RowVector> expected;
  for (const char* sql : kDmsQueries) {
    auto ref = appliance->ExecuteReference(sql);
    ASSERT_TRUE(ref.ok());
    expected.push_back(ref->rows);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        size_t qi = static_cast<size_t>(t + rep) %
                    (sizeof(kDmsQueries) / sizeof(kDmsQueries[0]));
        QueryOptions opts;
        opts.execute.dms_codec = DmsCodec::kColumnar;
        auto r = session.Run(kDmsQueries[qi], opts);
        if (!r.ok() || !RowSetsEqual(r->rows, expected[qi])) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace pdw
