// Tests for the observability substrate: trace spans, metrics registry,
// formatting helpers, and the QueryProfile renderings.

#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/format.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/trace.h"

namespace pdw::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (recursive descent). The repo has no
// JSON library, and the exporters hand-build their output, so every ToJson
// surface is pushed through this.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& s) { return JsonChecker(s).Valid(); }

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1,2.5,-3e-2,\"a\\\"b\",true,null,{\"k\":[]}]"));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("[1 2]"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("{\"a\":01x}"));
}

// ---------------------------------------------------------------------------
// Formatting helpers.

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(0), "0B");
  EXPECT_EQ(FormatBytes(482), "482B");
  EXPECT_EQ(FormatBytes(12.3 * 1024), "12.30KB");
  EXPECT_EQ(FormatBytes(4.5 * 1024 * 1024), "4.50MB");
  EXPECT_EQ(FormatBytes(3.0 * 1024 * 1024 * 1024), "3.00GB");
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(3.5), "3.500s");
  EXPECT_EQ(FormatSeconds(0.00124), "1.24ms");
  EXPECT_EQ(FormatSeconds(2e-6), "2.00us");
  EXPECT_EQ(FormatSeconds(835e-9), "835ns");
}

TEST(FormatTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(FormatTest, JsonNumberAlwaysParses) {
  for (double v : {0.0, 1.0, -2.5, 1e-9, 3.14159e12, 1e20,
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_TRUE(IsValidJson(JsonNumber(v))) << JsonNumber(v);
  }
  EXPECT_EQ(JsonNumber(42), "42");
  EXPECT_EQ(JsonNumber(-7), "-7");
}

// ---------------------------------------------------------------------------
// Tracer.

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    TraceSpan outer("outer", &tracer);
    EXPECT_FALSE(outer.active());
    outer.AddAttr("k", 1.0);  // must be a safe no-op
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, NestingFormsTree) {
  Tracer tracer;
  tracer.Enable();
  {
    TraceSpan root("compile", &tracer);
    {
      TraceSpan child("parse", &tracer);
      child.AddAttr("bytes", 128.0);
    }
    { TraceSpan child2("optimize", &tracer); }
  }
  { TraceSpan other("execute", &tracer); }

  std::vector<TraceRecord> recs = tracer.Snapshot();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].name, "compile");
  EXPECT_EQ(recs[0].parent, -1);
  EXPECT_EQ(recs[0].depth, 0);
  EXPECT_EQ(recs[1].name, "parse");
  EXPECT_EQ(recs[1].parent, recs[0].id);
  EXPECT_EQ(recs[1].depth, 1);
  ASSERT_EQ(recs[1].attrs.size(), 1u);
  EXPECT_EQ(recs[1].attrs[0].first, "bytes");
  EXPECT_EQ(recs[2].name, "optimize");
  EXPECT_EQ(recs[2].parent, recs[0].id);
  EXPECT_EQ(recs[3].name, "execute");
  EXPECT_EQ(recs[3].parent, -1);
  // Wall time of the parent covers its children.
  EXPECT_GE(recs[0].wall_seconds,
            recs[1].wall_seconds + recs[2].wall_seconds - 1e-9);

  std::string text = tracer.ToText();
  EXPECT_NE(text.find("compile"), std::string::npos);
  EXPECT_NE(text.find("  parse"), std::string::npos);
  EXPECT_TRUE(IsValidJson(tracer.ToJson())) << tracer.ToJson();
}

TEST(TracerTest, EndIsIdempotentAndClearWorks) {
  Tracer tracer;
  tracer.Enable();
  TraceSpan span("s", &tracer);
  span.End();
  span.End();
  EXPECT_EQ(tracer.size(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(IsValidJson(tracer.ToJson()));
}

TEST(TracerTest, ThreadSafetySmoke) {
  Tracer tracer;
  tracer.Enable();
  constexpr int kThreads = 8, kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan outer("outer" + std::to_string(t), &tracer);
        TraceSpan inner("inner", &tracer);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<TraceRecord> recs = tracer.Snapshot();
  ASSERT_EQ(recs.size(), static_cast<size_t>(kThreads * kSpans * 2));
  // Every inner span's parent must be an outer span from its own thread.
  for (const TraceRecord& r : recs) {
    if (r.name == "inner") {
      ASSERT_GE(r.parent, 0);
      EXPECT_EQ(recs[static_cast<size_t>(r.parent)].name.substr(0, 5),
                "outer");
    }
  }
  EXPECT_TRUE(IsValidJson(tracer.ToJson()));
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry reg;
  reg.Count("optimizer.groups", 5);
  reg.Count("optimizer.groups", 3);
  reg.SetGauge("dms.lambda.network", 2.5);
  EXPECT_EQ(reg.counter("optimizer.groups"), 8);
  EXPECT_EQ(reg.counter("missing"), 0);
  EXPECT_EQ(reg.gauge("dms.lambda.network"), 2.5);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("optimizer.groups"), 8);
  reg.Reset();
  EXPECT_EQ(reg.counter("optimizer.groups"), 0);
}

TEST(MetricsTest, ExplicitHistogramBuckets) {
  MetricsRegistry reg;
  reg.DefineHistogram("executor.batch_rows", {10, 100, 1000});
  for (double v : {1.0, 5.0, 10.0, 50.0, 500.0, 5000.0, 50000.0}) {
    reg.Observe("executor.batch_rows", v);
  }
  HistogramSnapshot h = reg.Snapshot().histograms.at("executor.batch_rows");
  ASSERT_EQ(h.bounds.size(), 3u);
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 3u);  // 1, 5, 10 (bounds inclusive)
  EXPECT_EQ(h.counts[1], 1u);  // 50
  EXPECT_EQ(h.counts[2], 1u);  // 500
  EXPECT_EQ(h.counts[3], 2u);  // 5000, 50000 overflow
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 50000);
  EXPECT_EQ(h.sum, 1 + 5 + 10 + 50 + 500 + 5000 + 50000);
}

TEST(MetricsTest, ObserveAutoDeclaresDecadeBuckets) {
  MetricsRegistry reg;
  reg.Observe("dms.step.bytes", 42);
  HistogramSnapshot h = reg.Snapshot().histograms.at("dms.step.bytes");
  ASSERT_EQ(h.bounds.size(), 10u);  // 1, 10, ..., 1e9
  EXPECT_EQ(h.bounds.front(), 1);
  EXPECT_EQ(h.bounds.back(), 1e9);
  EXPECT_EQ(h.count, 1u);
}

TEST(MetricsTest, SnapshotJsonAndTextRender) {
  MetricsRegistry reg;
  reg.Count("a.b", 2);
  reg.SetGauge("c.d", 1.5);
  reg.Observe("e.f", 3);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(IsValidJson(snap.ToJson())) << snap.ToJson();
  std::string text = snap.ToText();
  EXPECT_NE(text.find("a.b"), std::string::npos);
  EXPECT_NE(text.find("c.d"), std::string::npos);
}

TEST(MetricsTest, ThreadSafetySmoke) {
  MetricsRegistry reg;
  constexpr int kThreads = 8, kOps = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kOps; ++i) {
        reg.Count("shared.counter");
        reg.Observe("shared.histogram", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared.counter"), kThreads * kOps);
  EXPECT_EQ(reg.Snapshot().histograms.at("shared.histogram").count,
            static_cast<uint64_t>(kThreads * kOps));
}

// ---------------------------------------------------------------------------
// QueryProfile.

QueryProfile MakeProfile() {
  QueryProfile p;
  p.sql = "SELECT 1";
  p.compile_phases = {{"parse", 1e-4}, {"bind", 2e-4}};
  p.compile_seconds = 3e-4;
  p.optimizer = {12, 40, 25, 15, 6};
  StepProfile dms;
  dms.index = 0;
  dms.kind = "DMS";
  dms.move_kind = "Shuffle";
  dms.dest_table = "TEMP_ID_1";
  dms.sql = "SELECT o_custkey FROM orders";
  dms.estimated_rows = 1500;
  dms.actual_rows = 100;  // 15x misestimate
  dms.estimated_cost = 0.25;
  dms.measured_seconds = 0.01;
  dms.rows_moved = 100;
  dms.reader = {4096, 0.001};
  dms.network = {2048, 0.002};
  dms.writer = {4096, 0.001};
  dms.bulkcopy = {4096, 0.003};
  StepProfile ret;
  ret.index = 1;
  ret.kind = "RETURN";
  ret.sql = "SELECT * FROM TEMP_ID_1";
  ret.estimated_rows = 100;
  ret.actual_rows = 100;
  ret.operators = {{0, "HashAggregate(global)", 100, 100, 0.002, 8},
                   {1, "TableScan(TEMP_ID_1)", 100, 100, 0.001, 8}};
  p.steps = {dms, ret};
  p.modeled_cost = 0.25;
  p.measured_seconds = 0.02;
  return p;
}

TEST(QueryProfileTest, MisestimateFactor) {
  StepProfile s;
  s.estimated_rows = 1500;
  s.actual_rows = 100;
  EXPECT_DOUBLE_EQ(s.MisestimateFactor(), 15.0);
  s.estimated_rows = 100;
  s.actual_rows = 1500;
  EXPECT_DOUBLE_EQ(s.MisestimateFactor(), 15.0);
  s.estimated_rows = 0;  // floors at 1
  s.actual_rows = 0;
  EXPECT_DOUBLE_EQ(s.MisestimateFactor(), 1.0);
}

TEST(QueryProfileTest, TextRendering) {
  QueryProfile p = MakeProfile();
  std::string text = p.ToText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE SELECT 1"), std::string::npos);
  EXPECT_NE(text.find("parse="), std::string::npos);
  EXPECT_NE(text.find("optimizer: groups=12 options=40 kept=25 pruned=15 "
                      "enforcers=6"),
            std::string::npos);
  EXPECT_NE(text.find("DSQL step 0: DMS Shuffle -> TEMP_ID_1"),
            std::string::npos);
  EXPECT_NE(text.find("[MISESTIMATE 15x]"), std::string::npos);
  EXPECT_NE(text.find("reader{4.00KB"), std::string::npos);
  EXPECT_NE(text.find("DSQL step 1: RETURN"), std::string::npos);
  EXPECT_NE(text.find("HashAggregate(global)"), std::string::npos);
  // The aligned RETURN step (accurate estimate) must not be flagged.
  size_t ret_pos = text.find("DSQL step 1");
  EXPECT_EQ(text.find("MISESTIMATE", ret_pos), std::string::npos);
}

TEST(QueryProfileTest, ThresholdControlsFlagging) {
  QueryProfile p = MakeProfile();
  EXPECT_EQ(p.ToText(16.0).find("MISESTIMATE"), std::string::npos);
  EXPECT_NE(p.ToText(2.0).find("MISESTIMATE"), std::string::npos);
}

TEST(QueryProfileTest, JsonRoundTrip) {
  QueryProfile p = MakeProfile();
  p.sql = "SELECT \"quoted\"\nAND newline";
  std::string json = p.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"move_kind\":\"Shuffle\""), std::string::npos);
  EXPECT_NE(json.find("\"misestimate_factor\":15"), std::string::npos);
  EXPECT_NE(json.find("\"operators\":[{\"depth\":0"), std::string::npos);
  // Empty profile must still be valid JSON.
  EXPECT_TRUE(IsValidJson(QueryProfile{}.ToJson()));
}

}  // namespace
}  // namespace pdw::obs
