#include <gtest/gtest.h>

#include "plan/distribution.h"
#include "plan/plan_node.h"

namespace pdw {
namespace {

TEST(DistributionPropertyTest, CanonicalizationUsesEquivalence) {
  ColumnEquivalence eq;
  eq.AddEquality(1, 7);
  DistributionProperty on1 = DistributionProperty::Distributed({1});
  DistributionProperty on7 = DistributionProperty::Distributed({7});
  EXPECT_TRUE(on1.Matches(on7, eq));
  EXPECT_EQ(on1.Canonical(eq), on7.Canonical(eq));
  ColumnEquivalence empty;
  EXPECT_FALSE(on1.Matches(on7, empty));
}

TEST(DistributionPropertyTest, CanonicalSortsAndDedups) {
  ColumnEquivalence eq;
  eq.AddEquality(3, 9);
  DistributionProperty p = DistributionProperty::Distributed({9, 3, 5});
  DistributionProperty c = p.Canonical(eq);
  EXPECT_EQ(c.columns, (std::vector<ColumnId>{3, 5}));
}

TEST(DistributionPropertyTest, Kinds) {
  EXPECT_TRUE(DistributionProperty::Replicated().is_replicated());
  EXPECT_TRUE(DistributionProperty::Control().is_control());
  EXPECT_TRUE(DistributionProperty::Distributed({1})
                  .is_distributed_on_known_columns());
  EXPECT_FALSE(DistributionProperty::AnyDistributed()
                   .is_distributed_on_known_columns());
  EXPECT_EQ(DistributionProperty::Replicated().ToString(), "Replicated");
  EXPECT_EQ(DistributionProperty::Distributed({4}).ToString(),
            "Distributed(#4)");
}

TEST(PlanNodeTest, CloneIsDeep) {
  PlanNode root;
  root.kind = PhysOpKind::kMove;
  root.move_kind = DmsOpKind::kBroadcastMove;
  root.move_cost = 1.5;
  auto child = std::make_unique<PlanNode>();
  child->kind = PhysOpKind::kTableScan;
  child->table_name = "orders";
  root.children.push_back(std::move(child));

  PlanNodePtr copy = root.Clone();
  EXPECT_EQ(copy->kind, PhysOpKind::kMove);
  ASSERT_EQ(copy->children.size(), 1u);
  EXPECT_EQ(copy->children[0]->table_name, "orders");
  copy->children[0]->table_name = "changed";
  EXPECT_EQ(root.children[0]->table_name, "orders");
}

TEST(PlanNodeTest, MoveCostAggregation) {
  PlanNode root;
  root.kind = PhysOpKind::kFilter;
  auto m1 = std::make_unique<PlanNode>();
  m1->kind = PhysOpKind::kMove;
  m1->move_cost = 2.0;
  auto m2 = std::make_unique<PlanNode>();
  m2->kind = PhysOpKind::kMove;
  m2->move_cost = 3.0;
  m1->children.push_back(std::move(m2));
  root.children.push_back(std::move(m1));
  EXPECT_DOUBLE_EQ(TotalMoveCost(root), 5.0);
  EXPECT_EQ(CountMoves(root), 2);
}

TEST(PlanNodeTest, TreePrintingIncludesDistribution) {
  PlanNode scan;
  scan.kind = PhysOpKind::kTableScan;
  scan.table_name = "lineitem";
  scan.cardinality = 60000;
  scan.row_width = 16;
  scan.distribution = DistributionProperty::Distributed({6});
  std::string text = PlanTreeToString(scan);
  EXPECT_NE(text.find("lineitem"), std::string::npos);
  EXPECT_NE(text.find("Distributed(#6)"), std::string::npos);
  EXPECT_NE(text.find("rows=60000"), std::string::npos);
}

TEST(DmsOpKindTest, Names) {
  EXPECT_STREQ(DmsOpKindToString(DmsOpKind::kShuffle), "SHUFFLE_MOVE");
  EXPECT_STREQ(DmsOpKindToString(DmsOpKind::kTrimMove), "TRIM_MOVE");
  EXPECT_STREQ(DmsOpKindToString(DmsOpKind::kReplicatedBroadcast),
               "REPLICATED_BROADCAST");
}

}  // namespace
}  // namespace pdw
