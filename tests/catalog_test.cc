#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace pdw {
namespace {

TableDef SimpleTable(const std::string& name, DistributionSpec dist) {
  TableDef def;
  def.name = name;
  def.schema = Schema({{"id", TypeId::kInt, false}, {"v", TypeId::kVarchar, true}});
  def.distribution = std::move(dist);
  return def;
}

TEST(CatalogTest, CreateLookupDrop) {
  Catalog catalog(Topology{4});
  EXPECT_EQ(catalog.topology().num_compute_nodes, 4);
  ASSERT_TRUE(catalog.CreateTable(SimpleTable("t", DistributionSpec::HashOn("id"))).ok());
  EXPECT_TRUE(catalog.HasTable("T"));  // case-insensitive
  auto t = catalog.GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name, "t");
  EXPECT_EQ((*t)->DistributionColumnOrdinal(), 0);
  EXPECT_EQ((*t)->distribution.ToString(), "HASH(id)");
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_FALSE(catalog.HasTable("t"));
  EXPECT_FALSE(catalog.DropTable("t").ok());
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(SimpleTable("t", DistributionSpec::Replicated())).ok());
  Status s = catalog.CreateTable(SimpleTable("T", DistributionSpec::Replicated()));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, BadDistributionColumnRejected) {
  Catalog catalog;
  Status s = catalog.CreateTable(SimpleTable("t", DistributionSpec::HashOn("nope")));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, ReplicatedHasNoDistributionOrdinal) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(SimpleTable("r", DistributionSpec::Replicated())).ok());
  auto t = catalog.GetTable("r");
  EXPECT_EQ((*t)->DistributionColumnOrdinal(), -1);
  EXPECT_TRUE((*t)->distribution.is_replicated());
}

TEST(CatalogTest, ColumnStatsLookup) {
  Catalog catalog;
  TableDef def = SimpleTable("t", DistributionSpec::Replicated());
  ColumnStats cs;
  cs.row_count = 10;
  cs.distinct_count = 5;
  def.stats.columns["id"] = cs;
  ASSERT_TRUE(catalog.CreateTable(std::move(def)).ok());
  auto t = catalog.GetTable("t");
  const ColumnStats* found = (*t)->GetColumnStats("ID");
  // Stats keys are lowercase; lookup tries lowercase first.
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->distinct_count, 5);
  EXPECT_EQ((*t)->GetColumnStats("missing"), nullptr);
}

TEST(CatalogTest, ListTables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(SimpleTable("b", DistributionSpec::Replicated())).ok());
  ASSERT_TRUE(catalog.CreateTable(SimpleTable("a", DistributionSpec::Replicated())).ok());
  auto names = catalog.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // sorted by key
}

}  // namespace
}  // namespace pdw
