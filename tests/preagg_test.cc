// Partial-aggregate pushdown (PR 9): plan-shape expectations, cost-based
// decline, duplicate-sensitivity gates, AVG oracle regression, the
// preagg on/off x engine x DMS-codec differential sweep, DMS byte
// savings, observability surfaces, and plan-cache fingerprinting.
//
// The fixture is a purpose-built dim/fact schema rather than TPC-H: at
// the small scales the tests load, TPC-H dimension tables are so small
// that broadcasting them is nearly free and pushdown never pays off. Here
// `dim` is wide enough that broadcasting it is expensive, `fact` is
// distributed on a non-join column (so the join always forces movement),
// and fact's join key has only 50 distinct values against 12000 rows —
// the high-reduction regime the pushdown targets. Grouping by the unique
// column `f_uniq` instead gives the adversarial near-unique case the
// cost model must decline.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "appliance/appliance.h"
#include "common/row.h"
#include "pdw/compiler.h"
#include "pdw/plan_cache.h"

namespace pdw {
namespace {

constexpr int kDimRows = 8000;
constexpr int kFactRows = 12000;

// 50 matched join-key values, plus NULL keys (every 97th row) and keys
// with no dim match (every 101st row): partial groups for those must be
// dropped by the join, not leak into results.
int64_t FactKey(int i) { return (i % 101 == 0) ? 9000 + i % 10 : i % 50; }

const char* kHighReduction =
    "SELECT d_grp, SUM(f_val) AS s, COUNT(f_val) AS c "
    "FROM fact, dim WHERE f_key = d_key GROUP BY d_grp";
const char* kNearUnique =
    "SELECT f_uniq, SUM(f_val) AS s "
    "FROM fact, dim WHERE f_key = d_key GROUP BY f_uniq";
const char* kAvgQuery =
    "SELECT d_grp, AVG(f_val) AS a, COUNT(f_val) AS c "
    "FROM fact, dim WHERE f_key = d_key GROUP BY d_grp";
const char* kDistinctAgg =
    "SELECT d_grp, COUNT(DISTINCT f_grp) AS c "
    "FROM fact, dim WHERE f_key = d_key GROUP BY d_grp";
const char* kScalarAgg =
    "SELECT SUM(f_val) AS s, COUNT(*) AS c "
    "FROM fact, dim WHERE f_key = d_key";

PdwCompilerOptions Opts(int preagg) {
  PdwCompilerOptions o;
  o.pdw.enable_preagg = preagg;
  return o;
}

class PreaggTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    appliance_ = new Appliance(Topology{8});
    ASSERT_TRUE(appliance_
                    ->CreateTableSql(
                        "CREATE TABLE dim (d_key INT NOT NULL, d_grp INT, "
                        "d_name VARCHAR(16)) "
                        "WITH (DISTRIBUTION = HASH(d_key))")
                    .ok());
    ASSERT_TRUE(appliance_
                    ->CreateTableSql(
                        "CREATE TABLE fact (f_key INT, f_grp INT, "
                        "f_val DOUBLE, f_uniq INT) "
                        "WITH (DISTRIBUTION = HASH(f_uniq))")
                    .ok());
    RowVector dim;
    dim.reserve(kDimRows);
    for (int i = 0; i < kDimRows; ++i) {
      dim.push_back({Datum::Int(i), Datum::Int(i % 10),
                     Datum::Varchar("d" + std::to_string(i % 16))});
    }
    ASSERT_TRUE(appliance_->LoadRows("dim", dim).ok());
    RowVector fact;
    fact.reserve(kFactRows);
    for (int i = 0; i < kFactRows; ++i) {
      // Integer-valued doubles: SUM/AVG are exact in any addition order,
      // so every plan shape must agree byte-for-byte.
      Datum key = (i % 97 == 0) ? Datum::Null() : Datum::Int(FactKey(i));
      Datum val = (i % 23 == 0) ? Datum::Null() : Datum::Double(i % 90);
      fact.push_back(
          {key, Datum::Int(i % 7), val, Datum::Int(i)});
    }
    ASSERT_TRUE(appliance_->LoadRows("fact", fact).ok());
  }

  static void TearDownTestSuite() {
    delete appliance_;
    appliance_ = nullptr;
  }

  static RowVector Reference(const std::string& sql) {
    auto ref = appliance_->ExecuteReference(sql);
    EXPECT_TRUE(ref.ok()) << ref.status().message();
    return ref.ok() ? ref->rows : RowVector{};
  }

  static Appliance* appliance_;
};

Appliance* PreaggTest::appliance_ = nullptr;

TEST_F(PreaggTest, ChosenOnHighReductionGroups) {
  auto on = CompilePdwQuery(appliance_->shell(), kHighReduction, Opts(1));
  ASSERT_TRUE(on.ok()) << on.status().message();
  EXPECT_GT(on->parallel.preagg_considered, 0u);
  EXPECT_GT(on->parallel.preagg_kept, 0u);
  EXPECT_TRUE(on->parallel.preagg_chosen);

  auto off = CompilePdwQuery(appliance_->shell(), kHighReduction, Opts(0));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->parallel.preagg_considered, 0u);
  EXPECT_FALSE(off->parallel.preagg_chosen);
  // Pushdown was chosen because it is strictly cheaper, not by fiat.
  EXPECT_LT(on->parallel.cost, off->parallel.cost);
}

TEST_F(PreaggTest, DeclinedOnNearUniqueGroups) {
  // Grouping by the unique column gives no reduction; the lambda_preagg
  // CPU charge makes the pushed variant strictly worse and the cost
  // model must keep the plain plan — same cost as disabling the rewrite.
  auto on = CompilePdwQuery(appliance_->shell(), kNearUnique, Opts(1));
  ASSERT_TRUE(on.ok());
  EXPECT_GT(on->parallel.preagg_considered, 0u);
  EXPECT_FALSE(on->parallel.preagg_chosen);

  auto off = CompilePdwQuery(appliance_->shell(), kNearUnique, Opts(0));
  ASSERT_TRUE(off.ok());
  EXPECT_DOUBLE_EQ(on->parallel.cost, off->parallel.cost);
}

TEST_F(PreaggTest, DistinctAggregateRefusesPushdown) {
  // COUNT(DISTINCT x) is duplicate-sensitive in a way no partial phase
  // below the join can repair: the gate must fire before enumeration.
  auto on = CompilePdwQuery(appliance_->shell(), kDistinctAgg, Opts(1));
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->parallel.preagg_considered, 0u);
  EXPECT_FALSE(on->parallel.preagg_chosen);
}

TEST_F(PreaggTest, ScalarAggregateRefusesPushdown) {
  // Empty GROUP BY: no grouping keys to intersect with either side, and
  // the single global group gains nothing from a partial phase.
  auto on = CompilePdwQuery(appliance_->shell(), kScalarAgg, Opts(1));
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->parallel.preagg_considered, 0u);
  EXPECT_FALSE(on->parallel.preagg_chosen);
}

TEST_F(PreaggTest, EnvKnobDisablesPushdown) {
  setenv("PDW_OPT_PREAGG", "0", 1);
  auto off = CompilePdwQuery(appliance_->shell(), kHighReduction, {});
  unsetenv("PDW_OPT_PREAGG");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->parallel.preagg_considered, 0u);

  auto on = CompilePdwQuery(appliance_->shell(), kHighReduction, {});
  ASSERT_TRUE(on.ok());
  EXPECT_GT(on->parallel.preagg_considered, 0u);
}

TEST_F(PreaggTest, AvgMatchesRowOracleOverBothPlanShapes) {
  // AVG is pre-split into SUM/COUNT by the binder, so pushdown applies;
  // both the pushed and the classic two-phase plan must agree with the
  // single-node row oracle on both engines.
  auto on = CompilePdwQuery(appliance_->shell(), kAvgQuery, Opts(1));
  ASSERT_TRUE(on.ok()) << on.status().message();
  EXPECT_TRUE(on->parallel.preagg_chosen);

  RowVector ref = Reference(kAvgQuery);
  Session session = appliance_->Connect();
  for (int preagg : {0, 1}) {
    for (EngineKind engine : {EngineKind::kRow, EngineKind::kBatch}) {
      ExecOptions exec;
      exec.engine = engine;
      auto got = session.Run(kAvgQuery, QueryOptions()
                                            .WithCompilerOptions(Opts(preagg))
                                            .WithEngine(exec));
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_TRUE(RowSetsEqual(got->rows, ref))
          << "preagg=" << preagg << " engine=" << static_cast<int>(engine);
    }
  }
}

TEST_F(PreaggTest, PushdownSweepIsByteIdentical) {
  // Every query x preagg on/off x engine x DMS codec must agree with the
  // reference oracle — including the shapes that refuse pushdown.
  const char* queries[] = {kHighReduction, kNearUnique, kAvgQuery,
                           kDistinctAgg, kScalarAgg};
  Session session = appliance_->Connect();
  for (const char* sql : queries) {
    RowVector ref = Reference(sql);
    for (int preagg : {0, 1}) {
      for (EngineKind engine : {EngineKind::kRow, EngineKind::kBatch}) {
        for (DmsCodec codec : {DmsCodec::kRow, DmsCodec::kColumnar}) {
          ExecOptions exec;
          exec.engine = engine;
          auto got = session.Run(sql, QueryOptions()
                                          .WithCompilerOptions(Opts(preagg))
                                          .WithEngine(exec)
                                          .WithDmsCodec(codec));
          ASSERT_TRUE(got.ok()) << got.status().message();
          EXPECT_TRUE(RowSetsEqual(got->rows, ref))
              << sql << "\npreagg=" << preagg
              << " engine=" << static_cast<int>(engine)
              << " codec=" << static_cast<int>(codec);
        }
      }
    }
  }
}

TEST_F(PreaggTest, PushdownShrinksDmsBytes) {
  Session session = appliance_->Connect();
  auto on = session.Run(kHighReduction, QueryOptions()
                                            .WithCompilerOptions(Opts(1))
                                            .WithPlanCache(false)
                                            .WithOperatorActuals());
  ASSERT_TRUE(on.ok()) << on.status().message();
  auto off = session.Run(kHighReduction, QueryOptions()
                                             .WithCompilerOptions(Opts(0))
                                             .WithPlanCache(false));
  ASSERT_TRUE(off.ok());
  EXPECT_TRUE(RowSetsEqual(on->rows, off->rows));

  double bytes_on =
      on->dms_metrics.network.bytes + on->dms_metrics.bulkcopy.bytes;
  double bytes_off =
      off->dms_metrics.network.bytes + off->dms_metrics.bulkcopy.bytes;
  // The partial collapses 12000 join-input rows to <= 8 * 50 per phase;
  // anything below 5x savings means the pushed plan didn't execute.
  EXPECT_LT(bytes_on * 5, bytes_off);

  // Observability: the pushed step is flagged in the profile with its
  // actual input rows, and surfaces in EXPLAIN ANALYZE text + JSON.
  bool found = false;
  for (const auto& step : on->profile.steps) {
    if (!step.preagg) continue;
    found = true;
    EXPECT_GT(step.preagg_rows_in, 0.0);
    EXPECT_GT(step.preagg_rows_in_actual, 0.0);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(on->explain_text.find("preagg:"), std::string::npos);
  EXPECT_NE(on->profile.ToJson().find("\"preagg\""), std::string::npos);
}

TEST_F(PreaggTest, FingerprintAndPlanCacheSeparatePreaggPlans) {
  EXPECT_NE(FingerprintCompilerOptions(Opts(1)),
            FingerprintCompilerOptions(Opts(0)));

  // Distinct statement text so earlier tests cannot have primed entries.
  const char* sql =
      "SELECT d_grp, SUM(f_val) AS s FROM fact, dim "
      "WHERE f_key = d_key AND d_grp >= 0 GROUP BY d_grp";
  Session session = appliance_->Connect();
  auto first = session.Run(sql, QueryOptions().WithCompilerOptions(Opts(1)));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  auto again = session.Run(sql, QueryOptions().WithCompilerOptions(Opts(1)));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  // Flipping the knob changes the fingerprint: no stale pushed plan.
  auto other = session.Run(sql, QueryOptions().WithCompilerOptions(Opts(0)));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->cache_hit);
  EXPECT_TRUE(RowSetsEqual(other->rows, again->rows));
}

}  // namespace
}  // namespace pdw
