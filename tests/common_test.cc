#include <gtest/gtest.h>

#include "common/datum.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/types.h"

namespace pdw {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table 'x'");
  EXPECT_EQ(s.ToString(), "not found: table 'x'");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Customer", "CUSTOMER"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("forest green", "forest%"));
  EXPECT_FALSE(LikeMatch("the forest", "forest%"));
  EXPECT_TRUE(LikeMatch("the forest", "%forest"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abbc", "a_c"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("anything", "%%"));
  EXPECT_FALSE(LikeMatch("abc", ""));
}

TEST(TypesTest, NamesRoundTrip) {
  EXPECT_EQ(TypeIdFromString("INTEGER"), TypeId::kInt);
  EXPECT_EQ(TypeIdFromString("decimal"), TypeId::kDouble);
  EXPECT_EQ(TypeIdFromString("varchar"), TypeId::kVarchar);
  EXPECT_EQ(TypeIdFromString("DATE"), TypeId::kDate);
  EXPECT_EQ(TypeIdFromString("nonsense"), TypeId::kInvalid);
  EXPECT_STREQ(TypeIdToString(TypeId::kInt), "INT");
}

TEST(DatumTest, NullHandling) {
  Datum n = Datum::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n.type(), TypeId::kInvalid);
  EXPECT_EQ(n.ToString(), "NULL");
  // NULLs compare equal to each other and before values.
  EXPECT_EQ(n.Compare(Datum::Null()), 0);
  EXPECT_LT(n.Compare(Datum::Int(0)), 0);
}

TEST(DatumTest, NumericComparisonAcrossTypes) {
  EXPECT_EQ(Datum::Int(5).Compare(Datum::Double(5.0)), 0);
  EXPECT_LT(Datum::Int(4).Compare(Datum::Double(4.5)), 0);
  EXPECT_GT(Datum::Double(10.5).Compare(Datum::Int(10)), 0);
}

TEST(DatumTest, HashConsistentWithEquality) {
  EXPECT_EQ(Datum::Int(7).Hash(), Datum::Double(7.0).Hash());
  EXPECT_EQ(Datum::Varchar("x").Hash(), Datum::Varchar("x").Hash());
}

TEST(DatumTest, Casts) {
  auto r = Datum::Varchar("42").CastTo(TypeId::kInt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->int_value(), 42);
  auto bad = Datum::Varchar("xyz").CastTo(TypeId::kInt);
  EXPECT_FALSE(bad.ok());
  auto d = Datum::Varchar("1994-01-01").CastTo(TypeId::kDate);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->type(), TypeId::kDate);
}

TEST(DateTest, ParseFormatRoundTrip) {
  for (const char* s : {"1970-01-01", "1994-01-01", "1995-12-31",
                        "2000-02-29", "2026-07-04", "1969-12-31"}) {
    auto days = ParseDate(s);
    ASSERT_TRUE(days.ok()) << s;
    EXPECT_EQ(FormatDate(*days), s);
  }
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1970-01-02"), 1);
  EXPECT_EQ(*ParseDate("1971-01-01"), 365);
}

TEST(DateTest, AddYears) {
  int32_t d = *ParseDate("1994-01-01");
  EXPECT_EQ(FormatDate(AddYears(d, 1)), "1995-01-01");
  EXPECT_EQ(FormatDate(AddYears(*ParseDate("2000-02-29"), 1)), "2001-02-28");
}

TEST(DateTest, InvalidInput) {
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1994-13-01").ok());
}

TEST(RowTest, WidthAndHash) {
  Row r = {Datum::Int(1), Datum::Varchar("abcd"), Datum::Null()};
  EXPECT_EQ(RowWidth(r), 8 + 4 + 1);
  Row r2 = {Datum::Int(1), Datum::Varchar("abcd"), Datum::Null()};
  EXPECT_EQ(HashRowColumns(r, {0, 1}), HashRowColumns(r2, {0, 1}));
}

TEST(RowTest, RowSetsEqualIsOrderInsensitive) {
  RowVector a = {{Datum::Int(1)}, {Datum::Int(2)}};
  RowVector b = {{Datum::Int(2)}, {Datum::Int(1)}};
  EXPECT_TRUE(RowSetsEqual(a, b));
  RowVector c = {{Datum::Int(1)}, {Datum::Int(1)}};
  EXPECT_FALSE(RowSetsEqual(a, c));  // multiset semantics
}

TEST(RowTest, RowSetsEqualToleratesFloatNoise) {
  RowVector a = {{Datum::Double(100.0)}};
  RowVector b = {{Datum::Double(100.0 + 1e-12)}};
  EXPECT_TRUE(RowSetsEqual(a, b));
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s({{"C_CUSTKEY", TypeId::kInt, false}, {"c_name", TypeId::kVarchar, true}});
  EXPECT_EQ(s.FindColumn("c_custkey"), 0);
  EXPECT_EQ(s.FindColumn("C_NAME"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

}  // namespace
}  // namespace pdw
