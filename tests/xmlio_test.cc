#include <gtest/gtest.h>

#include "optimizer/serial_optimizer.h"
#include "test_util.h"
#include "xmlio/memo_xml.h"

namespace pdw {
namespace {

class XmlIoTest : public ::testing::Test {
 protected:
  XmlIoTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  CompilationResult Compile(const std::string& sql) {
    auto r = CompileQuery(catalog_, sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).ValueOrDie();
  }

  Catalog catalog_;
};

TEST_F(XmlIoTest, RoundTripPreservesStructure) {
  CompilationResult c = Compile(
      "SELECT c_name, SUM(o_totalprice) AS total FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_orderdate > DATE '1995-06-01' "
      "GROUP BY c_name ORDER BY total DESC LIMIT 3");
  std::string xml_text = MemoToXml(*c.memo, *c.stats);
  auto imported = MemoFromXml(xml_text, catalog_);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->memo->num_groups(), c.memo->num_groups());
  EXPECT_EQ(imported->memo->num_exprs(), c.memo->num_exprs());
  EXPECT_EQ(imported->memo->root(), c.memo->root());
  for (int g = 0; g < c.memo->num_groups(); ++g) {
    const Group& orig = c.memo->group(g);
    const Group& got = imported->memo->group(g);
    EXPECT_NEAR(orig.cardinality, got.cardinality, 1e-9 * (1 + orig.cardinality));
    EXPECT_NEAR(orig.row_width, got.row_width, 1e-9 * (1 + orig.row_width));
    ASSERT_EQ(orig.exprs.size(), got.exprs.size());
    for (size_t e = 0; e < orig.exprs.size(); ++e) {
      EXPECT_TRUE(orig.exprs[e].op->PayloadEquals(*got.exprs[e].op))
          << "group " << g << " expr " << e << ": "
          << orig.exprs[e].op->ToString() << " vs "
          << got.exprs[e].op->ToString();
      EXPECT_EQ(orig.exprs[e].children, got.exprs[e].children);
    }
  }
}

TEST_F(XmlIoTest, SecondRoundTripIsIdentical) {
  CompilationResult c = Compile(
      "SELECT s_name FROM supplier WHERE s_suppkey IN "
      "(SELECT ps_suppkey FROM partsupp WHERE ps_availqty > 100)");
  std::string once = MemoToXml(*c.memo, *c.stats);
  auto imported = MemoFromXml(once, catalog_);
  ASSERT_TRUE(imported.ok());
  std::string twice = MemoToXml(*imported->memo, *imported->stats);
  auto again = MemoFromXml(twice, catalog_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->memo->num_groups(), imported->memo->num_groups());
  EXPECT_EQ(again->memo->num_exprs(), imported->memo->num_exprs());
}

TEST_F(XmlIoTest, StatsSurviveTransfer) {
  CompilationResult c = Compile(
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
  std::string xml_text = MemoToXml(*c.memo, *c.stats);
  auto imported = MemoFromXml(xml_text, catalog_);
  ASSERT_TRUE(imported.ok());
  // NDV of o_custkey must have crossed the XML boundary.
  for (int g = 0; g < imported->memo->num_groups(); ++g) {
    for (const auto& b : imported->memo->group(g).output) {
      if (b.name == "o_custkey") {
        EXPECT_NEAR(imported->stats->Ndv(b.id, 0), 1000, 1);
      }
    }
  }
}

TEST_F(XmlIoTest, SerializedExpressionsCoverAllKinds) {
  CompilationResult c = Compile(
      "SELECT CASE WHEN c_acctbal > 0 THEN 'pos' ELSE 'neg' END AS sign, "
      "COUNT(*) FROM customer WHERE c_name LIKE 'Cust%' "
      "AND c_nationkey IS NOT NULL AND "
      "CAST(c_custkey AS DOUBLE) < 1e9 GROUP BY "
      "CASE WHEN c_acctbal > 0 THEN 'pos' ELSE 'neg' END");
  std::string xml_text = MemoToXml(*c.memo, *c.stats);
  auto imported = MemoFromXml(xml_text, catalog_);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->memo->num_exprs(), c.memo->num_exprs());
}

TEST_F(XmlIoTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(MemoFromXml("<NotAMemo/>", catalog_).ok());
  EXPECT_FALSE(MemoFromXml("garbage", catalog_).ok());
  EXPECT_FALSE(MemoFromXml("<Memo root=\"99\" groups=\"0\"></Memo>", catalog_).ok());
}

TEST_F(XmlIoTest, UnknownTableRejected) {
  CompilationResult c = Compile("SELECT c_name FROM customer");
  std::string xml_text = MemoToXml(*c.memo, *c.stats);
  Catalog empty;
  EXPECT_FALSE(MemoFromXml(xml_text, empty).ok());
}

}  // namespace
}  // namespace pdw
