#include <gtest/gtest.h>

#include "xml/xml.h"

namespace pdw::xml {
namespace {

TEST(XmlTest, BuildAndSerialize) {
  Element root("Memo");
  root.SetAttr("groups", static_cast<int64_t>(3));
  Element* g = root.AddChild("Group");
  g->SetAttr("id", static_cast<int64_t>(0));
  g->SetAttr("card", 1.5);
  std::string text = root.Serialize();
  EXPECT_NE(text.find("<Memo groups=\"3\">"), std::string::npos);
  EXPECT_NE(text.find("<Group id=\"0\""), std::string::npos);
}

TEST(XmlTest, RoundTrip) {
  Element root("Root");
  root.SetAttr("name", std::string("a<b&c>\"d'"));
  Element* child = root.AddChild("Child");
  child->set_text("hello & <world>");
  child->SetAttr("x", static_cast<int64_t>(-42));
  root.AddChild("Other");

  auto parsed = Parse(root.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Element& p = **parsed;
  EXPECT_EQ(p.name(), "Root");
  EXPECT_EQ(p.GetAttr("name"), "a<b&c>\"d'");
  ASSERT_EQ(p.children().size(), 2u);
  EXPECT_EQ(p.children()[0]->text(), "hello & <world>");
  EXPECT_EQ(p.children()[0]->GetAttrInt("x"), -42);
  EXPECT_NE(p.FindChild("Other"), nullptr);
  EXPECT_EQ(p.FindChild("Missing"), nullptr);
}

TEST(XmlTest, ParseWithDeclarationAndComments) {
  auto parsed = Parse(
      "<?xml version=\"1.0\"?>\n<!-- a comment -->\n"
      "<a><!-- inner --><b x='1'/><b x='2'/></a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->FindChildren("b").size(), 2u);
}

TEST(XmlTest, AttrDoubleRoundTrip) {
  Element root("R");
  root.SetAttr("v", 0.1234567890123456789);
  auto parsed = Parse(root.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ((*parsed)->GetAttrDouble("v"), 0.1234567890123456789);
}

TEST(XmlTest, ParseErrors) {
  EXPECT_FALSE(Parse("<a><b></a>").ok());
  EXPECT_FALSE(Parse("<a").ok());
  EXPECT_FALSE(Parse("<a x=1></a>").ok());
  EXPECT_FALSE(Parse("no xml at all").ok());
  EXPECT_FALSE(Parse("<a><!-- unterminated</a>").ok());
}

TEST(XmlTest, DeepNesting) {
  std::string text = "<n0>";
  for (int i = 1; i < 50; ++i) text += "<n" + std::to_string(i) + ">";
  for (int i = 49; i >= 1; --i) text += "</n" + std::to_string(i) + ">";
  text += "</n0>";
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok());
}

}  // namespace
}  // namespace pdw::xml
