// Differential sharing suite: sub-plan sharing across concurrent queries
// must be *byte-identical* to isolated execution — under both engines, both
// DMS codecs, leader faults, leader cancellation, and retry — and must
// never leak a temp table or a registry refcount.
//
// The deterministic anchor is intra-query sharing: a UNION ALL of two
// identical arms materializes the same shuffle twice, so with sharing on,
// arm two always follows arm one's published step — no thread timing
// involved. Cross-query tests then stretch the window with query-scoped
// delay faults on the leader and poll the registry before releasing the
// follower, so the rendezvous is exercised for real, not probabilistically.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "common/fault.h"
#include "common/retry.h"
#include "dms/dms_service.h"
#include "pdw/step_fingerprint.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

using fault::FaultKind;
using fault::FaultRegistry;
using fault::FaultSchedule;
using fault::FaultSpec;

constexpr int kNodes = 3;

// ---------------------------------------------------------------------------
// Fingerprint unit tests (no appliance): the identity must be invariant to
// per-execution temp numbering, chain through temp lineage, and split on
// anything that changes the materialized bytes.
// ---------------------------------------------------------------------------

DsqlPlan MakeTwoStepPlan(uint64_t qid) {
  std::string q = "TEMP_ID_Q" + std::to_string(qid) + "_";
  DsqlPlan plan;
  DsqlStep s0;
  s0.kind = DsqlStepKind::kDms;
  s0.sql = "SELECT o_custkey FROM [tpch].[dbo].[orders]";
  s0.dest_table = q + "0";
  s0.dest_schema.AddColumn({"o_custkey", TypeId::kInt, true});
  DsqlStep s1;
  s1.kind = DsqlStepKind::kDms;
  s1.sql = "SELECT o_custkey, COUNT(*) AS cnt FROM [tempdb].[dbo].[" + q +
           "0] GROUP BY o_custkey";
  s1.dest_table = q + "1";
  s1.dest_schema.AddColumn({"o_custkey", TypeId::kInt, true});
  s1.dest_schema.AddColumn({"cnt", TypeId::kInt, false});
  DsqlStep ret;
  ret.kind = DsqlStepKind::kReturn;
  ret.sql = "SELECT * FROM [tempdb].[dbo].[" + q + "1]";
  plan.steps = {s0, s1, ret};
  return plan;
}

TEST(StepFingerprintTest, QueryIdInvariantAndLineageChained) {
  TableVersionTracker versions;
  StepFingerprintOptions opts;
  opts.engine_label = "batch";
  opts.codec_label = "columnar";
  auto f5 = ComputeStepFingerprints(MakeTwoStepPlan(5), 5, versions, opts);
  auto f9 = ComputeStepFingerprints(MakeTwoStepPlan(9), 9, versions, opts);
  ASSERT_EQ(f5.size(), 3u);
  EXPECT_TRUE(f5[0].shareable());
  EXPECT_TRUE(f5[1].shareable());
  EXPECT_FALSE(f5[2].shareable()) << "Return steps must never share";
  // Different query ids number their temps differently; the canonical
  // identity must not see that.
  EXPECT_EQ(f5[0].text, f9[0].text);
  EXPECT_EQ(f5[1].text, f9[1].text);
  EXPECT_NE(f5[0].text, f5[1].text);
  EXPECT_EQ(f5[0].hex, FingerprintHex(f5[0].text));
}

TEST(StepFingerprintTest, StatsBumpCascadesThroughLineage) {
  TableVersionTracker versions;
  StepFingerprintOptions opts;
  opts.engine_label = "batch";
  opts.codec_label = "columnar";
  auto before = ComputeStepFingerprints(MakeTwoStepPlan(5), 5, versions, opts);
  versions.Bump("orders");
  auto after = ComputeStepFingerprints(MakeTwoStepPlan(5), 5, versions, opts);
  // Step 0 scans orders directly; step 1 scans only step 0's temp but must
  // split too, because its input lineage (step 0's digest) changed.
  EXPECT_NE(before[0].text, after[0].text);
  EXPECT_NE(before[1].text, after[1].text);
}

TEST(StepFingerprintTest, EngineAndCodecSplitFingerprints) {
  TableVersionTracker versions;
  StepFingerprintOptions batch_col{"batch", "columnar"};
  StepFingerprintOptions row_col{"row", "columnar"};
  StepFingerprintOptions batch_row{"batch", "row"};
  auto a = ComputeStepFingerprints(MakeTwoStepPlan(5), 5, versions, batch_col);
  auto b = ComputeStepFingerprints(MakeTwoStepPlan(5), 5, versions, row_col);
  auto c = ComputeStepFingerprints(MakeTwoStepPlan(5), 5, versions, batch_row);
  EXPECT_NE(a[0].text, b[0].text);
  EXPECT_NE(a[0].text, c[0].text);
}

TEST(StepFingerprintTest, UnresolvedLineageIsNeverShareable) {
  TableVersionTracker versions;
  StepFingerprintOptions opts{"batch", "columnar"};
  DsqlPlan plan;
  DsqlStep s;
  s.kind = DsqlStepKind::kDms;
  // References a temp no earlier step of this plan produced.
  s.sql = "SELECT * FROM [tempdb].[dbo].[TEMP_ID_Q5_7]";
  s.dest_table = "TEMP_ID_Q5_0";
  plan.steps = {s};
  auto f = ComputeStepFingerprints(plan, 5, versions, opts);
  EXPECT_FALSE(f[0].shareable());
}

// ---------------------------------------------------------------------------
// Appliance-level differential tests.
// ---------------------------------------------------------------------------

struct EngineCodec {
  EngineKind engine;
  DmsCodec codec;
  const char* name;
};

const EngineCodec kConfigs[] = {
    {EngineKind::kBatch, DmsCodec::kColumnar, "batch/columnar"},
    {EngineKind::kBatch, DmsCodec::kRow, "batch/row"},
    {EngineKind::kRow, DmsCodec::kColumnar, "row/columnar"},
    {EngineKind::kRow, DmsCodec::kRow, "row/row"},
};

QueryOptions ConfigOptions(const EngineCodec& cfg, bool share) {
  QueryOptions options;
  options.execute.engine.engine = cfg.engine;
  options.execute.dms_codec = cfg.codec;
  options.execute.share_steps = share;
  options.execute.retry.sleep_fn = [](double) {};
  return options;
}

/// Exact (ordered) row equality — execution is deterministic, so shared
/// and isolated runs must agree byte for byte, not just as multisets.
bool SameRows(const RowVector& a, const RowVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      if (a[i][j].Compare(b[i][j]) != 0) return false;
    }
  }
  return true;
}

class SharedStepTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    appliance_ = new Appliance(Topology{kNodes});
    session_ = new Session(appliance_->Connect());
    ASSERT_TRUE(tpch::CreateTpchTables(appliance_).ok());
    tpch::TpchConfig cfg;
    cfg.scale = 0.01;
    ASSERT_TRUE(tpch::LoadTpch(appliance_, cfg).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete appliance_;
    appliance_ = nullptr;
  }
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override {
    FaultRegistry::Global().Reset();
    ExpectNoTempLitter("teardown");
    EXPECT_EQ(appliance_->shared_steps().active_entries(), 0u)
        << "registry must drain once every query finished";
  }

  static void ExpectNoTempLitter(const char* when) {
    for (int n = 0; n < kNodes; ++n) {
      for (const std::string& t :
           appliance_->compute_node(n).catalog().ListTables()) {
        EXPECT_EQ(t.find("TEMP_ID"), std::string::npos)
            << when << ": leaked " << t << " on node " << n;
      }
    }
    for (const std::string& t :
         appliance_->control_engine().catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos)
          << when << ": leaked " << t << " on control";
    }
  }

  /// Blocks until the registry holds an entry in `state`, or 5s.
  static bool WaitForRegistryEntry(const std::string& state) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const SharedStepRegistry::EntryInfo& e :
           appliance_->shared_steps().ListEntries()) {
        if (e.state == state) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  /// Query id of the in-flight request whose SQL contains `marker`, or 0.
  static uint64_t FindRunningQuery(const std::string& marker) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const obs::RequestState& r : appliance_->requests().Snapshot()) {
        if (r.end_seconds < 0 && r.sql.find(marker) != std::string::npos) {
          return r.query_id;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 0;
  }

  static Appliance* appliance_;
  static Session* session_;
};

Appliance* SharedStepTest::appliance_ = nullptr;
Session* SharedStepTest::session_ = nullptr;

/// The shared shuffle both query families need: customer ⋈ orders grouped
/// by nation. The ORDER BY variant is a *different* query (different
/// normalized text, different Return step) whose DMS steps are identical.
const char kAggSql[] =
    "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
    "WHERE c_custkey = o_custkey GROUP BY c_nationkey";
const char kAggSqlOrdered[] =
    "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
    "WHERE c_custkey = o_custkey GROUP BY c_nationkey ORDER BY c_nationkey";
/// Two identical arms: with sharing on, arm two's shuffle always follows
/// arm one's — the deterministic intra-query rendezvous.
const char kUnionSql[] =
    "SELECT c_nationkey FROM customer, orders WHERE c_custkey = o_custkey "
    "AND c_nationkey > 5 "
    "UNION ALL "
    "SELECT c_nationkey FROM customer, orders WHERE c_custkey = o_custkey "
    "AND c_nationkey > 5";

TEST_F(SharedStepTest, UnionArmsShareDeterministically) {
  for (const EngineCodec& cfg : kConfigs) {
    auto isolated = session_->Run(kUnionSql, ConfigOptions(cfg, false));
    ASSERT_TRUE(isolated.ok()) << cfg.name << ": " << isolated.status().ToString();
    EXPECT_EQ(isolated->shared_steps_followed, 0);
    auto shared = session_->Run(kUnionSql, ConfigOptions(cfg, true));
    ASSERT_TRUE(shared.ok()) << cfg.name << ": " << shared.status().ToString();
    EXPECT_GE(shared->shared_steps_followed, 1)
        << cfg.name << ": identical UNION ALL arms must rendezvous";
    EXPECT_GT(shared->shared_saved_bytes, 0) << cfg.name;
    EXPECT_TRUE(SameRows(isolated->rows, shared->rows))
        << cfg.name << ": shared execution diverged from isolated";
  }
}

TEST_F(SharedStepTest, SharedRoleSurfacesInProfileAndDmv) {
  auto shared = session_->Run(
      kUnionSql, ConfigOptions(kConfigs[0], true).WithPlanCache(false));
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  int leaders = 0, followers = 0;
  for (const obs::StepProfile& sp : shared->profile.steps) {
    if (sp.shared_role == "leader") ++leaders;
    if (sp.shared_role == "follower") {
      ++followers;
      EXPECT_GT(sp.shared_saved_bytes, 0);
    }
  }
  EXPECT_GE(leaders, 1);
  EXPECT_GE(followers, 1);
  EXPECT_NE(shared->explain_text.find("[shared: follower"), std::string::npos)
      << "EXPLAIN ANALYZE must render the sharing role";

  // The exec_steps DMV reports the same roles and saved bytes.
  auto dmv = session_->Run(
      "SELECT shared_role, saved_bytes FROM sys.dm_pdw_exec_steps "
      "WHERE request_id = " + std::to_string(shared->query_id));
  ASSERT_TRUE(dmv.ok()) << dmv.status().ToString();
  int dmv_followers = 0;
  for (const Row& r : dmv->rows) {
    if (!r[0].is_null() && r[0].string_value() == "follower") {
      ++dmv_followers;
      EXPECT_GT(r[1].double_value(), 0);
    }
  }
  EXPECT_GE(dmv_followers, 1);
}

TEST_F(SharedStepTest, ConcurrentOverlappingQueriesShare) {
  const EngineCodec& cfg = kConfigs[0];
  // Isolated baselines (also pre-warms the plan cache, keeping the
  // follower's compile out of the rendezvous window).
  auto base_a = session_->Run(kAggSql, ConfigOptions(cfg, false));
  auto base_b = session_->Run(kAggSqlOrdered, ConfigOptions(cfg, false));
  ASSERT_TRUE(base_a.ok()) << base_a.status().ToString();
  ASSERT_TRUE(base_b.ok()) << base_b.status().ToString();

  // Leader: every DMS network transfer of this one query is delayed, so
  // its shuffle stays "executing" long enough for the follower to join.
  QueryOptions leader_options = ConfigOptions(cfg, true);
  FaultSpec slow;
  slow.point = "dms.network";
  slow.query = 1;  // the arming query itself, not the concurrent follower
  slow.count = -1;
  slow.kind = FaultKind::kDelay;
  slow.delay_seconds = 0.05;
  leader_options.execute.faults = {slow};

  Result<ApplianceResult> leader_result = Status::Internal("not run");
  std::thread leader([&] {
    leader_result = session_->Run(kAggSql, leader_options);
  });
  ASSERT_TRUE(WaitForRegistryEntry("executing"))
      << "leader never registered an executing shared step";
  auto follower_result =
      session_->Run(kAggSqlOrdered, ConfigOptions(cfg, true));
  leader.join();

  ASSERT_TRUE(leader_result.ok()) << leader_result.status().ToString();
  ASSERT_TRUE(follower_result.ok()) << follower_result.status().ToString();
  EXPECT_GE(follower_result->shared_steps_followed, 1)
      << "overlapping non-identical queries must share the common shuffle";
  EXPECT_TRUE(SameRows(base_a->rows, leader_result->rows));
  EXPECT_TRUE(SameRows(base_b->rows, follower_result->rows))
      << "follower result diverged from isolated execution";
}

TEST_F(SharedStepTest, FaultedLeaderReleasesFollowers) {
  const EngineCodec& cfg = kConfigs[0];
  auto base_b = session_->Run(kAggSqlOrdered, ConfigOptions(cfg, false));
  ASSERT_TRUE(base_b.ok()) << base_b.status().ToString();
  (void)session_->Run(kAggSql, ConfigOptions(cfg, false));  // warm plan cache

  // Leader: slow network (so the follower joins), then a permanent
  // bulkcopy failure — the flight must fail, the follower must re-lead.
  QueryOptions leader_options = ConfigOptions(cfg, true);
  FaultSpec slow;
  slow.point = "dms.network";
  slow.query = 1;
  slow.count = -1;
  slow.kind = FaultKind::kDelay;
  slow.delay_seconds = 0.05;
  FaultSpec boom;
  boom.point = "dms.bulkcopy";
  boom.query = 1;
  boom.count = -1;
  boom.kind = FaultKind::kPermanentError;
  leader_options.execute.faults = {slow, boom};

  uint64_t failed_flights_before =
      appliance_->shared_steps().stats().failed_flights;
  Result<ApplianceResult> leader_result = Status::Internal("not run");
  std::thread leader([&] {
    leader_result = session_->Run(kAggSql, leader_options);
  });
  ASSERT_TRUE(WaitForRegistryEntry("executing"));
  auto follower_result =
      session_->Run(kAggSqlOrdered, ConfigOptions(cfg, true));
  leader.join();

  EXPECT_FALSE(leader_result.ok()) << "permanent fault must fail the leader";
  ASSERT_TRUE(follower_result.ok())
      << "released follower must execute independently: "
      << follower_result.status().ToString();
  EXPECT_TRUE(SameRows(base_b->rows, follower_result->rows));
  EXPECT_GE(appliance_->shared_steps().stats().failed_flights,
            failed_flights_before + 1);
}

TEST_F(SharedStepTest, CancelledLeaderReleasesFollowers) {
  const EngineCodec& cfg = kConfigs[0];
  // Distinct marker literal so FindRunningQuery targets the leader only.
  const std::string leader_sql = std::string(kAggSql) + " ORDER BY cnt";
  auto base_a = session_->Run(leader_sql, ConfigOptions(cfg, false));
  auto base_b = session_->Run(kAggSqlOrdered, ConfigOptions(cfg, false));
  ASSERT_TRUE(base_a.ok());
  ASSERT_TRUE(base_b.ok());

  QueryOptions leader_options = ConfigOptions(cfg, true);
  FaultSpec slow;
  slow.point = "dms.network";
  slow.query = 1;
  slow.count = -1;
  slow.kind = FaultKind::kDelay;
  slow.delay_seconds = 0.05;
  leader_options.execute.faults = {slow};

  Result<ApplianceResult> leader_result = Status::Internal("not run");
  std::thread leader([&] {
    leader_result = session_->Run(leader_sql, leader_options);
  });
  ASSERT_TRUE(WaitForRegistryEntry("executing"));
  std::thread follower_thread;
  Result<ApplianceResult> follower_result = Status::Internal("not run");
  follower_thread = std::thread([&] {
    follower_result = session_->Run(kAggSqlOrdered, ConfigOptions(cfg, true));
  });
  uint64_t leader_id = FindRunningQuery("order by cnt");
  ASSERT_NE(leader_id, 0u) << "leader request not visible in the registry";
  ASSERT_TRUE(session_->Cancel(leader_id).ok());
  leader.join();
  follower_thread.join();

  EXPECT_FALSE(leader_result.ok());
  EXPECT_EQ(leader_result.status().code(), StatusCode::kCancelled)
      << leader_result.status().ToString();
  ASSERT_TRUE(follower_result.ok())
      << "follower of a cancelled leader must recover: "
      << follower_result.status().ToString();
  EXPECT_TRUE(SameRows(base_b->rows, follower_result->rows));
}

TEST_F(SharedStepTest, TransientLeaderRetryStillPublishes) {
  const EngineCodec& cfg = kConfigs[0];
  auto isolated = session_->Run(kUnionSql, ConfigOptions(cfg, false));
  ASSERT_TRUE(isolated.ok());

  // Arm one's shuffle fails transiently once, is retried while still
  // holding leadership, then publishes; arm two must still follow.
  QueryOptions options = ConfigOptions(cfg, true);
  FaultSpec blip;
  blip.point = "dms.network";
  blip.query = 1;
  blip.count = 1;
  blip.kind = FaultKind::kTransientError;
  options.execute.faults = {blip};

  auto shared = session_->Run(kUnionSql, options);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_GE(shared->shared_steps_followed, 1);
  bool retried = false;
  for (const obs::StepProfile& sp : shared->profile.steps) {
    if (sp.retries > 0) retried = true;
  }
  EXPECT_TRUE(retried) << "the transient fault should have forced a retry";
  EXPECT_TRUE(SameRows(isolated->rows, shared->rows));
}

/// The sharing fault points are best-effort degradations: a fault at the
/// rendezvous (wlm.share.join) or at publish (wlm.share.publish) must fall
/// back to private execution with byte-identical results — sharing faults
/// never fail queries.
TEST_F(SharedStepTest, ShareFaultPointsDegradeToIsolation) {
  auto isolated = session_->Run(kUnionSql, ConfigOptions(kConfigs[0], false));
  ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
  for (const char* point : {"wlm.share.join", "wlm.share.publish"}) {
    SCOPED_TRACE(point);
    for (FaultKind kind :
         {FaultKind::kTransientError, FaultKind::kPermanentError}) {
      QueryOptions options = ConfigOptions(kConfigs[0], true);
      FaultSpec spec;
      spec.point = point;
      spec.query = 1;
      spec.count = -1;  // every traversal: no arm may share through it
      spec.kind = kind;
      options.execute.faults = {spec};
      auto faulted = session_->Run(kUnionSql, options);
      ASSERT_TRUE(faulted.ok())
          << "sharing fault must not fail the query: "
          << faulted.status().ToString();
      EXPECT_EQ(faulted->shared_steps_followed, 0);
      EXPECT_TRUE(SameRows(isolated->rows, faulted->rows));
    }
  }
  ExpectNoTempLitter("after share-fault runs");
}

TEST_F(SharedStepTest, ShareKnobOffExecutesPrivately) {
  uint64_t leads_before = appliance_->shared_steps().stats().leads;
  auto off = session_->Run(kUnionSql,
                           ConfigOptions(kConfigs[0], false));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->shared_steps_followed, 0);
  EXPECT_EQ(off->shared_steps_led, 0);
  EXPECT_EQ(appliance_->shared_steps().stats().leads, leads_before)
      << "share_steps=false must never touch the registry";
}

TEST_F(SharedStepTest, SharedStepsDmvIsQueryable) {
  auto dmv = session_->Run(
      "SELECT fingerprint, state, refcount FROM sys.dm_pdw_shared_steps");
  ASSERT_TRUE(dmv.ok()) << dmv.status().ToString();
  EXPECT_EQ(dmv->rows.size(), 0u) << "registry should be idle between tests";
}

/// Seeded N-thread storm of overlapping, non-identical TPC-H subqueries,
/// swept across both engines × both DMS codecs: every result must be
/// byte-identical to its isolated (share-off) baseline, at least one
/// shared execution must happen per config, and nothing may leak.
TEST_F(SharedStepTest, SeededStormMatchesIsolatedExecution) {
  const int kThreads = 8;
  const int kReps = 4;
  const std::vector<std::string> workload = {
      kAggSql,
      kAggSqlOrdered,
      kUnionSql,  // guarantees >=1 follow per config even without overlap
      "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
      "WHERE c_custkey = o_custkey AND c_nationkey > 3 GROUP BY c_nationkey",
      "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
      "WHERE c_custkey = o_custkey AND c_nationkey > 3 GROUP BY c_nationkey "
      "ORDER BY cnt, c_nationkey",
  };
  for (const EngineCodec& cfg : kConfigs) {
    // Isolated baselines, share off.
    std::vector<RowVector> baselines;
    for (const std::string& sql : workload) {
      auto base = session_->Run(sql, ConfigOptions(cfg, false));
      ASSERT_TRUE(base.ok()) << cfg.name << ": " << base.status().ToString();
      baselines.push_back(base->rows);
    }
    uint64_t follows_before = appliance_->shared_steps().stats().follows;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::mt19937_64 rng(20120520u + static_cast<uint64_t>(t));
        for (int rep = 0; rep < kReps; ++rep) {
          size_t q = (static_cast<size_t>(t) + static_cast<size_t>(rep) +
                      static_cast<size_t>(rng() % workload.size())) %
                     workload.size();
          auto run = session_->Run(workload[q], ConfigOptions(cfg, true));
          if (!run.ok()) {
            ++failures;
            continue;
          }
          if (!SameRows(baselines[q], run->rows)) ++mismatches;
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0) << cfg.name;
    EXPECT_EQ(mismatches.load(), 0)
        << cfg.name << ": a shared run diverged from isolated execution";
    EXPECT_GT(appliance_->shared_steps().stats().follows, follows_before)
        << cfg.name << ": the storm never shared a single step";
    EXPECT_EQ(appliance_->shared_steps().active_entries(), 0u) << cfg.name;
    ExpectNoTempLitter(cfg.name);
  }
}

}  // namespace
}  // namespace pdw
