#include <gtest/gtest.h>

#include <set>

#include "tpch/tpch.h"

namespace pdw::tpch {
namespace {

TEST(TpchGeneratorTest, RowCountsScale) {
  TpchConfig small;
  small.scale = 0.1;
  TpchConfig large;
  large.scale = 0.2;
  EXPECT_EQ(GenerateCustomer(small).size(), 150u);
  EXPECT_EQ(GenerateCustomer(large).size(), 300u);
  EXPECT_EQ(GenerateOrders(small).size(), 1500u);
  EXPECT_EQ(GenerateRegion(small).size(), 5u);
  EXPECT_EQ(GenerateNation(small).size(), 25u);
  // Lineitem averages ~4 lines per order.
  size_t li = GenerateLineitem(small).size();
  EXPECT_GT(li, 1500u * 1);
  EXPECT_LT(li, 1500u * 8);
}

TEST(TpchGeneratorTest, DeterministicForSeed) {
  TpchConfig a;
  a.scale = 0.05;
  TpchConfig b = a;
  RowVector ra = GenerateOrders(a);
  RowVector rb = GenerateOrders(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(CompareRows(ra[i], rb[i]), 0);
  }
  b.seed = 7;
  RowVector rc = GenerateOrders(b);
  EXPECT_FALSE(RowSetsEqual(ra, rc));
}

TEST(TpchGeneratorTest, ForeignKeysAreValid) {
  TpchConfig cfg;
  cfg.scale = 0.05;
  int customers = static_cast<int>(GenerateCustomer(cfg).size());
  for (const Row& r : GenerateOrders(cfg)) {
    int64_t custkey = r[1].int_value();
    EXPECT_GE(custkey, 1);
    EXPECT_LE(custkey, customers);
  }
  int parts = static_cast<int>(GeneratePart(cfg).size());
  int suppliers = static_cast<int>(GenerateSupplier(cfg).size());
  for (const Row& r : GenerateLineitem(cfg)) {
    EXPECT_GE(r[1].int_value(), 1);
    EXPECT_LE(r[1].int_value(), parts);
    EXPECT_GE(r[2].int_value(), 1);
    EXPECT_LE(r[2].int_value(), suppliers);
  }
}

TEST(TpchGeneratorTest, PrimaryKeysAreUnique) {
  TpchConfig cfg;
  cfg.scale = 0.05;
  std::set<int64_t> keys;
  for (const Row& r : GenerateOrders(cfg)) {
    EXPECT_TRUE(keys.insert(r[0].int_value()).second);
  }
  std::set<std::pair<int64_t, int64_t>> ps;
  for (const Row& r : GeneratePartsupp(cfg)) {
    EXPECT_TRUE(ps.insert({r[0].int_value(), r[1].int_value()}).second);
  }
}

TEST(TpchGeneratorTest, SkewConcentratesKeys) {
  TpchConfig uniform;
  uniform.scale = 0.2;
  TpchConfig skewed = uniform;
  skewed.skew = 3;
  auto hot_fraction = [&](const RowVector& orders, int customers) {
    int hot = 0;
    for (const Row& r : orders) {
      if (r[1].int_value() <= customers / 8) ++hot;
    }
    return static_cast<double>(hot) / static_cast<double>(orders.size());
  };
  int customers = static_cast<int>(GenerateCustomer(uniform).size());
  double u = hot_fraction(GenerateOrders(uniform), customers);
  double s = hot_fraction(GenerateOrders(skewed), customers);
  EXPECT_GT(s, u * 2);
}

TEST(TpchGeneratorTest, PartNamesIncludeForest) {
  TpchConfig cfg;
  cfg.scale = 0.2;
  int forest = 0;
  for (const Row& r : GeneratePart(cfg)) {
    if (r[1].string_value().rfind("forest", 0) == 0) ++forest;
  }
  // ~10% of parts, so Q20's filter is selective but non-empty.
  EXPECT_GT(forest, 5);
}

TEST(TpchQueriesTest, SuiteIsWellFormed) {
  EXPECT_GE(Queries().size(), 10u);
  EXPECT_NE(FindQuery("Q20"), nullptr);
  EXPECT_NE(FindQuery("q1"), nullptr);  // case-insensitive
  EXPECT_EQ(FindQuery("Q99"), nullptr);
}

}  // namespace
}  // namespace pdw::tpch
