#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "algebra/equivalence.h"
#include "algebra/normalizer.h"
#include "algebra/scalar_eval.h"
#include "sql/parser.h"
#include "test_util.h"

namespace pdw {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  LogicalOpPtr Bind(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(catalog_);
    auto bound = binder.BindSelect(**stmt);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return bound.ok() ? bound->root : nullptr;
  }

  LogicalOpPtr BindNormalized(const std::string& sql,
                              NormalizerOptions opts = {}) {
    LogicalOpPtr root = Bind(sql);
    if (!root) return nullptr;
    auto norm = Normalize(root, opts);
    EXPECT_TRUE(norm.ok()) << norm.status().ToString();
    return norm.ok() ? *norm : nullptr;
  }

  static int CountKind(const LogicalOp& op, LogicalOpKind kind) {
    int n = op.kind() == kind ? 1 : 0;
    for (const auto& c : op.children()) n += CountKind(*c, kind);
    return n;
  }

  static const LogicalOp* FindKind(const LogicalOp& op, LogicalOpKind kind) {
    if (op.kind() == kind) return &op;
    for (const auto& c : op.children()) {
      if (const LogicalOp* f = FindKind(*c, kind)) return f;
    }
    return nullptr;
  }

  Catalog catalog_;
};

TEST_F(AlgebraTest, BindSimpleSelect) {
  LogicalOpPtr root = Bind("SELECT c_custkey, c_name FROM customer");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind(), LogicalOpKind::kProject);
  auto out = root->OutputBindings();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].name, "c_custkey");
  EXPECT_EQ(out[0].type, TypeId::kInt);
}

TEST_F(AlgebraTest, BindRejectsUnknownNames) {
  auto stmt = sql::ParseSelect("SELECT nope FROM customer");
  Binder binder(catalog_);
  EXPECT_FALSE(binder.BindSelect(**stmt).ok());
  auto stmt2 = sql::ParseSelect("SELECT c_custkey FROM no_such_table");
  EXPECT_FALSE(binder.BindSelect(**stmt2).ok());
}

TEST_F(AlgebraTest, BindRejectsAmbiguousColumn) {
  auto stmt = sql::ParseSelect(
      "SELECT c_custkey FROM customer c1, customer c2");
  Binder binder(catalog_);
  EXPECT_FALSE(binder.BindSelect(**stmt).ok());
}

TEST_F(AlgebraTest, BindRejectsUngroupedColumn) {
  auto stmt = sql::ParseSelect(
      "SELECT c_name, COUNT(*) FROM customer GROUP BY c_custkey");
  Binder binder(catalog_);
  EXPECT_FALSE(binder.BindSelect(**stmt).ok());
}

TEST_F(AlgebraTest, StarExpansion) {
  LogicalOpPtr root = Bind("SELECT * FROM nation");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->OutputBindings().size(), 3u);
}

TEST_F(AlgebraTest, AggregateBinding) {
  LogicalOpPtr root = Bind(
      "SELECT o_custkey, SUM(o_totalprice), COUNT(*) FROM orders "
      "GROUP BY o_custkey");
  ASSERT_NE(root, nullptr);
  const LogicalOp* agg = FindKind(*root, LogicalOpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  const auto& a = static_cast<const LogicalAggregate&>(*agg);
  EXPECT_EQ(a.group_by().size(), 1u);
  EXPECT_EQ(a.aggregates().size(), 2u);
}

TEST_F(AlgebraTest, AvgSplitsIntoSumAndCount) {
  LogicalOpPtr root = Bind("SELECT AVG(o_totalprice) FROM orders");
  ASSERT_NE(root, nullptr);
  const LogicalOp* agg = FindKind(*root, LogicalOpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  const auto& a = static_cast<const LogicalAggregate&>(*agg);
  // AVG is rewritten to SUM and COUNT at binding, making every aggregate
  // two-phase splittable for PDW.
  ASSERT_EQ(a.aggregates().size(), 2u);
  EXPECT_EQ(a.aggregates()[0].func, AggFunc::kSum);
  EXPECT_EQ(a.aggregates()[1].func, AggFunc::kCount);
}

TEST_F(AlgebraTest, InSubqueryBecomesSemiJoin) {
  LogicalOpPtr root = Bind(
      "SELECT s_name FROM supplier WHERE s_suppkey IN "
      "(SELECT ps_suppkey FROM partsupp)");
  ASSERT_NE(root, nullptr);
  const LogicalOp* join = FindKind(*root, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(static_cast<const LogicalJoin&>(*join).join_type(),
            LogicalJoinType::kSemi);
}

TEST_F(AlgebraTest, NotInBecomesAntiJoin) {
  LogicalOpPtr root = Bind(
      "SELECT s_name FROM supplier WHERE s_suppkey NOT IN "
      "(SELECT ps_suppkey FROM partsupp)");
  const LogicalOp* join = FindKind(*root, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(static_cast<const LogicalJoin&>(*join).join_type(),
            LogicalJoinType::kAnti);
}

TEST_F(AlgebraTest, CorrelatedScalarAggregateDecorrelates) {
  LogicalOpPtr root = Bind(
      "SELECT ps_suppkey FROM partsupp WHERE ps_availqty > "
      "(SELECT 0.5 * SUM(l_quantity) FROM lineitem "
      " WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey)");
  ASSERT_NE(root, nullptr);
  // The correlated scalar aggregate becomes GROUP BY l_partkey, l_suppkey
  // joined back on the correlation columns.
  const LogicalOp* agg = FindKind(*root, LogicalOpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(static_cast<const LogicalAggregate&>(*agg).group_by().size(), 2u);
  const LogicalOp* join = FindKind(*root, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(static_cast<const LogicalJoin&>(*join).join_type(),
            LogicalJoinType::kInner);
}

TEST_F(AlgebraTest, Q20Binds) {
  LogicalOpPtr root = Bind(
      "SELECT s_name, s_address FROM supplier, nation "
      "WHERE s_suppkey IN ("
      "  SELECT ps_suppkey FROM partsupp WHERE ps_partkey IN ("
      "    SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') "
      "  AND ps_availqty > ("
      "    SELECT 0.5 * SUM(l_quantity) FROM lineitem "
      "    WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey "
      "    AND l_shipdate >= DATE '1994-01-01')) "
      "AND s_nationkey = n_nationkey AND n_name = 'CANADA' "
      "ORDER BY s_name");
  ASSERT_NE(root, nullptr);
}

TEST_F(AlgebraTest, ScalarEval) {
  // (1 + 2) * 3 = 9
  ScalarExprPtr e = MakeBinary(
      sql::BinaryOp::kMul,
      MakeBinary(sql::BinaryOp::kAdd, MakeLiteral(Datum::Int(1)),
                 MakeLiteral(Datum::Int(2))),
      MakeLiteral(Datum::Int(3)));
  auto v = EvalConstant(*e);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 9);
}

TEST_F(AlgebraTest, ThreeValuedLogic) {
  ScalarExprPtr null_lit = MakeLiteral(Datum::Null());
  ScalarExprPtr true_lit = MakeLiteral(Datum::Bool(true));
  ScalarExprPtr false_lit = MakeLiteral(Datum::Bool(false));
  // NULL AND FALSE = FALSE
  auto v = EvalConstant(*MakeBinary(sql::BinaryOp::kAnd, null_lit, false_lit));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->is_null());
  EXPECT_FALSE(v->bool_value());
  // NULL AND TRUE = NULL
  v = EvalConstant(*MakeBinary(sql::BinaryOp::kAnd, null_lit, true_lit));
  EXPECT_TRUE(v->is_null());
  // NULL OR TRUE = TRUE
  v = EvalConstant(*MakeBinary(sql::BinaryOp::kOr, null_lit, true_lit));
  EXPECT_TRUE(v->bool_value());
  // NULL = NULL is NULL
  v = EvalConstant(*MakeBinary(sql::BinaryOp::kEq, null_lit, null_lit));
  EXPECT_TRUE(v->is_null());
}

TEST_F(AlgebraTest, EquivalenceClasses) {
  ColumnEquivalence eq;
  eq.AddEquality(1, 2);
  eq.AddEquality(2, 3);
  eq.AddEquality(10, 11);
  EXPECT_TRUE(eq.AreEquivalent(1, 3));
  EXPECT_FALSE(eq.AreEquivalent(1, 10));
  EXPECT_EQ(eq.ClassOf(3).size(), 3u);
  EXPECT_EQ(eq.NonTrivialClasses().size(), 2u);
  EXPECT_EQ(eq.Find(3), eq.Find(1));
}

TEST_F(AlgebraTest, PushdownPlacesFilterOnTable) {
  LogicalOpPtr root = BindNormalized(
      "SELECT c_name FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 100");
  ASSERT_NE(root, nullptr);
  // Cross join became inner join with the equi condition.
  const LogicalOp* join = FindKind(*root, LogicalOpKind::kJoin);
  ASSERT_NE(join, nullptr);
  const auto& j = static_cast<const LogicalJoin&>(*join);
  EXPECT_EQ(j.join_type(), LogicalJoinType::kInner);
  EXPECT_FALSE(j.conditions().empty());
  // The o_totalprice filter sits below the join.
  const LogicalOp* filter = FindKind(*join, LogicalOpKind::kFilter);
  ASSERT_NE(filter, nullptr);
}

TEST_F(AlgebraTest, ContradictionDetection) {
  LogicalOpPtr root = BindNormalized(
      "SELECT c_name FROM customer WHERE c_acctbal > 100 AND c_acctbal < 50");
  ASSERT_NE(root, nullptr);
  EXPECT_NE(FindKind(*root, LogicalOpKind::kEmpty), nullptr);
}

TEST_F(AlgebraTest, ContradictionOnConflictingEquality) {
  LogicalOpPtr root = BindNormalized(
      "SELECT n_name FROM nation WHERE n_name = 'CANADA' AND n_name = 'PERU'");
  ASSERT_NE(root, nullptr);
  EXPECT_NE(FindKind(*root, LogicalOpKind::kEmpty), nullptr);
}

TEST_F(AlgebraTest, EmptyPropagatesThroughInnerJoin) {
  LogicalOpPtr root = BindNormalized(
      "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey "
      "AND o_totalprice > 100 AND o_totalprice < 50");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(CountKind(*root, LogicalOpKind::kJoin), 0);
  EXPECT_NE(FindKind(*root, LogicalOpKind::kEmpty), nullptr);
}

TEST_F(AlgebraTest, TransitivityClosureDerivesConstant) {
  // c_custkey = o_custkey AND c_custkey = 7 should derive o_custkey = 7 on
  // the orders side.
  LogicalOpPtr root = BindNormalized(
      "SELECT o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND c_custkey = 7");
  ASSERT_NE(root, nullptr);
  // Count filters below the join referencing orders' side.
  int filters = CountKind(*root, LogicalOpKind::kFilter);
  EXPECT_GE(filters, 2) << LogicalTreeToString(*root);
}

TEST_F(AlgebraTest, RedundantJoinEliminated) {
  // Join customer-orders on customer's PK, selecting only orders columns:
  // customer is redundant under referential integrity.
  LogicalOpPtr root = BindNormalized(
      "SELECT o_totalprice FROM orders, customer WHERE o_custkey = c_custkey");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(CountKind(*root, LogicalOpKind::kJoin), 0)
      << LogicalTreeToString(*root);
}

TEST_F(AlgebraTest, RedundantJoinKeptWhenColumnsUsed) {
  LogicalOpPtr root = BindNormalized(
      "SELECT c_name, o_totalprice FROM orders, customer "
      "WHERE o_custkey = c_custkey");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(CountKind(*root, LogicalOpKind::kJoin), 1);
}

TEST_F(AlgebraTest, ColumnPruningTrimsGets) {
  LogicalOpPtr root = BindNormalized("SELECT c_name FROM customer");
  ASSERT_NE(root, nullptr);
  const LogicalOp* get = FindKind(*root, LogicalOpKind::kGet);
  ASSERT_NE(get, nullptr);
  // c_name plus c_custkey: pruning keeps the hash-distribution column so
  // the PDW optimizer can see the scan's physical distribution.
  const auto& bindings = static_cast<const LogicalGet&>(*get).bindings();
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].name, "c_custkey");
  EXPECT_EQ(bindings[1].name, "c_name");
}

TEST_F(AlgebraTest, ColumnPruningDropsNonDistributionColumns) {
  LogicalOpPtr root = BindNormalized("SELECT n_name FROM nation");
  ASSERT_NE(root, nullptr);
  const LogicalOp* get = FindKind(*root, LogicalOpKind::kGet);
  ASSERT_NE(get, nullptr);
  // nation is replicated: no distribution column to preserve.
  EXPECT_EQ(static_cast<const LogicalGet&>(*get).bindings().size(), 1u);
}

TEST_F(AlgebraTest, ConstantFoldingSimplifiesPredicate) {
  LogicalOpPtr root = BindNormalized(
      "SELECT c_name FROM customer WHERE 1 = 1 AND c_acctbal > 10 + 20");
  ASSERT_NE(root, nullptr);
  const LogicalOp* filter = FindKind(*root, LogicalOpKind::kFilter);
  ASSERT_NE(filter, nullptr);
  const auto& f = static_cast<const LogicalFilter&>(*filter);
  ASSERT_EQ(f.conjuncts().size(), 1u);
  // 10 + 20 folded to literal 30.
  std::string text = f.conjuncts()[0]->ToString();
  EXPECT_NE(text.find("30"), std::string::npos) << text;
}

TEST_F(AlgebraTest, LeftJoinNullRejectionBecomesInner) {
  LogicalOpPtr root = BindNormalized(
      "SELECT c_name FROM customer c LEFT JOIN orders o "
      "ON c_custkey = o_custkey WHERE o_totalprice > 100");
  ASSERT_NE(root, nullptr);
  const LogicalOp* join = FindKind(*root, LogicalOpKind::kJoin);
  // The join may have been eliminated entirely or converted to inner; it
  // must not remain a left outer join.
  if (join != nullptr) {
    EXPECT_NE(static_cast<const LogicalJoin&>(*join).join_type(),
              LogicalJoinType::kLeftOuter);
  }
}

TEST_F(AlgebraTest, SubstituteAndReplaceHelpers) {
  ColumnBinding a{1, "a", TypeId::kInt};
  ScalarExprPtr col = MakeColumn(a);
  ScalarExprPtr sum = MakeBinary(sql::BinaryOp::kAdd, col, MakeLiteral(Datum::Int(1)));
  std::map<ColumnId, ScalarExprPtr> mapping{{1, MakeLiteral(Datum::Int(5))}};
  ScalarExprPtr substituted = SubstituteColumns(sum, mapping);
  auto v = EvalConstant(*substituted);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 6);

  ScalarExprPtr replaced = ReplaceSubtree(sum, col, MakeLiteral(Datum::Int(10)));
  v = EvalConstant(*replaced);
  EXPECT_EQ(v->int_value(), 11);
}

}  // namespace
}  // namespace pdw
