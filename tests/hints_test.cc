#include <gtest/gtest.h>

#include "pdw/compiler.h"
#include "sql/parser.h"
#include "test_util.h"

namespace pdw {
namespace {

int CountMoveKind(const PlanNode& n, DmsOpKind k) {
  int c = (n.kind == PhysOpKind::kMove && n.move_kind == k) ? 1 : 0;
  for (const auto& ch : n.children) c += CountMoveKind(*ch, k);
  return c;
}

class HintsTest : public ::testing::Test {
 protected:
  HintsTest() : catalog_(testing::MakeTpchShellCatalog()) {}

  PdwCompilation Compile(const std::string& sql) {
    auto r = CompilePdwQuery(catalog_, sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).ValueOrDie();
  }

  Catalog catalog_;
};

TEST_F(HintsTest, ParserAcceptsHints) {
  auto stmt = sql::ParseSelect(
      "SELECT c_name FROM customer OPTION (FORCE_BROADCAST)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->hint, sql::DistributionHint::kForceBroadcast);
  stmt = sql::ParseSelect(
      "SELECT c_name FROM customer OPTION (FORCE_SHUFFLE)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->hint, sql::DistributionHint::kForceShuffle);
  EXPECT_FALSE(
      sql::ParseSelect("SELECT c_name FROM customer OPTION (NONSENSE)").ok());
}

TEST_F(HintsTest, ForceBroadcastEliminatesShuffles) {
  // The cost-based choice for this join is a shuffle; the hint forces the
  // broadcast strategy instead.
  const char* base =
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey AND o_totalprice > 1000";
  PdwCompilation unhinted = Compile(base);
  EXPECT_GE(CountMoveKind(*unhinted.parallel.plan, DmsOpKind::kShuffle), 1);

  PdwCompilation hinted =
      Compile(std::string(base) + " OPTION (FORCE_BROADCAST)");
  EXPECT_EQ(CountMoveKind(*hinted.parallel.plan, DmsOpKind::kShuffle), 0)
      << PlanTreeToString(*hinted.parallel.plan);
  EXPECT_GE(CountMoveKind(*hinted.parallel.plan, DmsOpKind::kBroadcastMove), 1);
  // Forcing a strategy can only cost more than the free choice.
  EXPECT_GE(hinted.parallel.cost, unhinted.parallel.cost);
}

TEST_F(HintsTest, ForceShuffleEliminatesBroadcasts) {
  // Joining huge lineitem with tiny part normally broadcasts part; the
  // hint forces shuffles on both sides.
  const char* base =
      "SELECT l_quantity, p_name FROM lineitem, part "
      "WHERE l_partkey = p_partkey AND p_retailprice < 950";
  PdwCompilation hinted = Compile(std::string(base) + " OPTION (FORCE_SHUFFLE)");
  EXPECT_EQ(CountMoveKind(*hinted.parallel.plan, DmsOpKind::kBroadcastMove), 0)
      << PlanTreeToString(*hinted.parallel.plan);
  EXPECT_GE(CountMoveKind(*hinted.parallel.plan, DmsOpKind::kShuffle), 1);
}

TEST_F(HintsTest, HintedPlansStayValid) {
  // Every operator in a hinted plan must still have compatible inputs —
  // spot-check by compiling a 3-way join both ways.
  const char* base =
      "SELECT c_name, l_quantity FROM customer, orders, lineitem "
      "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey";
  for (const char* hint : {" OPTION (FORCE_BROADCAST)", " OPTION (FORCE_SHUFFLE)"}) {
    auto r = CompilePdwQuery(catalog_, std::string(base) + hint);
    ASSERT_TRUE(r.ok()) << hint << ": " << r.status().ToString();
    EXPECT_NE(r->parallel.plan, nullptr);
  }
}

}  // namespace
}  // namespace pdw
