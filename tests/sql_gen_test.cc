#include <gtest/gtest.h>

#include "engine/local_engine.h"
#include "pdw/compiler.h"
#include "pdw/dsql.h"
#include "pdw/sql_gen.h"
#include "sql/parser.h"
#include "test_util.h"

namespace pdw {
namespace {

/// End-to-end property: for any serial plan over a single-node engine, the
/// generated SQL re-executes to the same rows as direct plan execution.
class SqlGenRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteSql("CREATE TABLE t (id INT, grp INT, v DOUBLE, "
                                "name VARCHAR(30), d DATE)")
                    .ok());
    ASSERT_TRUE(engine_
                    .ExecuteSql(
                        "INSERT INTO t VALUES "
                        "(1, 1, 1.5, 'it''s quoted', '1994-01-01'), "
                        "(2, 1, 2.5, 'per%cent', '1994-06-01'), "
                        "(3, 2, -3.5, 'under_score', '1995-01-01'), "
                        "(4, NULL, NULL, NULL, '1996-02-29')")
                    .ok());
  }

  /// Compiles a query, regenerates its SQL from the serial plan, runs both
  /// the plan and the regenerated text, and compares.
  void ExpectRoundTrip(const std::string& sql) {
    auto direct = engine_.ExecuteSql(sql);
    ASSERT_TRUE(direct.ok()) << sql << "\n" << direct.status().ToString();

    auto comp = CompileQuery(engine_.catalog(), sql);
    ASSERT_TRUE(comp.ok()) << comp.status().ToString();
    auto plan = ExtractBestSerialPlan(comp->memo.get());
    ASSERT_TRUE(plan.ok());
    auto gen = GenerateSql(**plan, "tpch");
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();

    auto again = engine_.ExecuteSql(gen->sql);
    ASSERT_TRUE(again.ok()) << gen->sql << "\n" << again.status().ToString();
    // Hidden sort carrier columns may widen the regenerated result; trim.
    RowVector direct_rows = direct->rows;
    RowVector again_rows = again->rows;
    size_t width = direct_rows.empty() ? 0 : direct_rows[0].size();
    for (Row& r : again_rows) {
      if (width > 0 && r.size() > width) r.resize(width);
    }
    EXPECT_TRUE(RowSetsEqual(direct_rows, again_rows)) << gen->sql;
  }

  LocalEngine engine_;
};

TEST_F(SqlGenRoundTripTest, QuotedStringsSurvive) {
  ExpectRoundTrip("SELECT id FROM t WHERE name = 'it''s quoted'");
}

TEST_F(SqlGenRoundTripTest, LikePatternsSurvive) {
  ExpectRoundTrip("SELECT id FROM t WHERE name LIKE 'per%'");
  ExpectRoundTrip("SELECT id FROM t WHERE name LIKE '%\\_score%'");
}

TEST_F(SqlGenRoundTripTest, DateLiteralsSurvive) {
  ExpectRoundTrip("SELECT id FROM t WHERE d >= DATE '1995-01-01'");
  ExpectRoundTrip("SELECT id FROM t WHERE d = DATE '1996-02-29'");
}

TEST_F(SqlGenRoundTripTest, NegativeDoublesAndNulls) {
  ExpectRoundTrip("SELECT id, v FROM t WHERE v < -1");
  ExpectRoundTrip("SELECT id FROM t WHERE v IS NULL");
}

TEST_F(SqlGenRoundTripTest, CaseExpressions) {
  ExpectRoundTrip(
      "SELECT id, CASE WHEN v > 0 THEN 'pos' WHEN v < 0 THEN 'neg' "
      "ELSE 'null' END AS sign FROM t");
}

TEST_F(SqlGenRoundTripTest, CastAndArithmetic) {
  ExpectRoundTrip(
      "SELECT CAST(id AS DOUBLE) * 2 - 1 AS x FROM t WHERE id % 2 = 1");
}

TEST_F(SqlGenRoundTripTest, DateAddRendersBarePart) {
  ExpectRoundTrip(
      "SELECT id FROM t WHERE d < DATEADD(year, 2, '1994-01-01')");
}

TEST_F(SqlGenRoundTripTest, AggregationWithGroupsAndHaving) {
  ExpectRoundTrip(
      "SELECT grp, COUNT(*) AS c, SUM(v) AS s FROM t GROUP BY grp "
      "HAVING COUNT(*) >= 1");
}

TEST_F(SqlGenRoundTripTest, DistinctAggregates) {
  ExpectRoundTrip("SELECT COUNT(DISTINCT grp) AS dg FROM t");
}

TEST_F(SqlGenRoundTripTest, TopNWithSort) {
  ExpectRoundTrip("SELECT id, v FROM t ORDER BY v DESC LIMIT 2");
}

TEST_F(SqlGenRoundTripTest, SelfJoin) {
  ExpectRoundTrip(
      "SELECT a.id, b.id FROM t a, t b WHERE a.grp = b.grp AND a.id < b.id");
}

TEST_F(SqlGenRoundTripTest, SemiAndAntiJoins) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE u (k INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO u VALUES (1), (3)").ok());
  ExpectRoundTrip("SELECT id FROM t WHERE id IN (SELECT k FROM u)");
  ExpectRoundTrip("SELECT id FROM t WHERE id NOT IN (SELECT k FROM u)");
}

TEST_F(SqlGenRoundTripTest, UnionAll) {
  ExpectRoundTrip("SELECT id FROM t UNION ALL SELECT grp FROM t "
                  "WHERE grp IS NOT NULL");
}

/// DSQL rendering of the full plan keeps the Fig. 7 style alias naming.
TEST(DsqlRenderingTest, AliasesFollowPaperConvention) {
  Catalog catalog = testing::MakeTpchShellCatalog();
  auto comp = CompilePdwQuery(
      catalog,
      "SELECT c_name, o_totalprice FROM customer, orders "
      "WHERE c_custkey = o_custkey");
  ASSERT_TRUE(comp.ok());
  auto dsql = GenerateDsql(*comp->parallel.plan, comp->output_names);
  ASSERT_TRUE(dsql.ok());
  bool found_alias = false;
  for (const auto& step : dsql->steps) {
    if (step.sql.find(" AS T1_") != std::string::npos) found_alias = true;
    EXPECT_NE(step.sql.find("[dbo]"), std::string::npos) << step.sql;
  }
  EXPECT_TRUE(found_alias);
}

}  // namespace
}  // namespace pdw
