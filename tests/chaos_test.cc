// Seeded chaos differential suite. Each run derives a query, an engine, a
// DMS codec, and a randomized fault schedule from one seed, executes it
// against the full appliance, and requires one of exactly two outcomes:
// the result matches the fault-free run of the same configuration, or the
// query fails with a clean Status — never a crash, a hang, or a wrong
// answer. After every run, zero TEMP_ID temp tables may survive anywhere
// and the appliance must stay serviceable.
//
// Also here: the fault-point coverage test (every registered injection
// point must be reachable, so dead sites fail CI) and the regression tests
// for aborting a backpressured ExecutePipelined without deadlocking.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "appliance/appliance.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "dms/dms_service.h"
#include "obs/metrics.h"
#include "tpch/tpch.h"

namespace pdw {
namespace {

using fault::FaultKind;
using fault::FaultRegistry;
using fault::FaultSchedule;
using fault::FaultSpec;

constexpr int kNodes = 3;

/// Fixed default so CI failures reproduce; PDW_CHAOS_SEED reruns one
/// reported seed (or explores new ones), PDW_CHAOS_RUNS resizes the sweep.
uint64_t BaseSeed() {
  if (const char* env = std::getenv("PDW_CHAOS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20120520;
}

int NumRuns() {
  if (const char* env = std::getenv("PDW_CHAOS_RUNS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// A compact random-query generator over the TPC-H schema (FK-connected
/// joins, filters, optional aggregation and ORDER BY; no LIMIT, so results
/// are a fully determined multiset).
std::string BuildRandomQuery(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int n) {
    return static_cast<int>(rng() % static_cast<uint64_t>(n));
  };
  struct Edge {
    const char* from;
    const char* to;
    const char* on;
  };
  // Each edge joins `from` (already chosen) to `to`.
  static const Edge kEdges[] = {
      {"customer", "orders", "c_custkey = o_custkey"},
      {"orders", "lineitem", "o_orderkey = l_orderkey"},
      {"lineitem", "supplier", "l_suppkey = s_suppkey"},
      {"lineitem", "part", "l_partkey = p_partkey"},
      {"customer", "nation", "c_nationkey = n_nationkey"},
  };
  static const char* kKeyCol[] = {"c_custkey", "o_orderkey", "l_orderkey",
                                  "s_suppkey", "p_partkey", "n_nationkey"};
  static const char* kTables[] = {"customer", "orders", "lineitem",
                                  "supplier", "part",    "nation"};

  int start = pick(6);
  std::vector<std::string> chosen = {kTables[start]};
  std::vector<std::string> conjuncts;
  int want = 1 + pick(3);
  for (int tries = 0; static_cast<int>(chosen.size()) < want && tries < 12;
       ++tries) {
    const Edge& e = kEdges[pick(5)];
    bool has_from = false, has_to = false;
    for (const std::string& t : chosen) {
      if (t == e.from) has_from = true;
      if (t == e.to) has_to = true;
    }
    if (!has_from || has_to) continue;
    chosen.push_back(e.to);
    conjuncts.push_back(e.on);
  }
  std::string group_col = kKeyCol[start];
  bool aggregate = pick(2) == 0;
  std::string sql = "SELECT ";
  if (aggregate) {
    sql += std::string(group_col) + ", COUNT(*) AS cnt";
  } else {
    sql += group_col;
  }
  sql += " FROM ";
  for (size_t i = 0; i < chosen.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += chosen[i];
  }
  if (pick(2) == 0) {
    conjuncts.push_back(std::string(group_col) + " > " +
                        std::to_string(pick(100)));
  }
  if (!conjuncts.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += conjuncts[i];
    }
  }
  if (aggregate) sql += " GROUP BY " + std::string(group_col);
  if (pick(2) == 0) sql += " ORDER BY " + std::string(group_col);
  return sql;
}

/// 1–3 specs drawn uniformly over all registered points and all kinds.
/// Delays use a near-zero duration: they perturb timing, never results.
FaultSchedule BuildRandomSchedule(uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::vector<std::string>& points = FaultRegistry::AllPoints();
  FaultSchedule schedule;
  int specs = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < specs; ++i) {
    FaultSpec spec;
    spec.point = points[rng() % points.size()];
    spec.query = 0;  // any query
    spec.count = 1 + static_cast<int>(rng() % 2);
    switch (rng() % 3) {
      case 0:
        spec.kind = FaultKind::kTransientError;
        break;
      case 1:
        spec.kind = FaultKind::kPermanentError;
        break;
      default:
        spec.kind = FaultKind::kDelay;
        spec.delay_seconds = 0.0002;
        break;
    }
    schedule.push_back(std::move(spec));
  }
  return schedule;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    appliance_ = new Appliance(Topology{kNodes});
    session_ = new Session(appliance_->Connect());
    ASSERT_TRUE(tpch::CreateTpchTables(appliance_).ok());
    tpch::TpchConfig cfg;
    cfg.scale = 0.01;
    ASSERT_TRUE(tpch::LoadTpch(appliance_, cfg).ok());
    // A dim/fact pair where partial-aggregate pushdown is actually chosen
    // (TPC-H dimensions at this scale are cheap to broadcast, so TPC-H
    // alone never exercises the pushed shape under faults): fact has 50
    // distinct join keys over 6000 rows and is distributed on an
    // unrelated column, dim is too wide to broadcast for free.
    ASSERT_TRUE(appliance_
                    ->CreateTableSql(
                        "CREATE TABLE dim (d_key INT NOT NULL, d_grp INT, "
                        "d_name VARCHAR(16)) "
                        "WITH (DISTRIBUTION = HASH(d_key))")
                    .ok());
    ASSERT_TRUE(appliance_
                    ->CreateTableSql(
                        "CREATE TABLE fact (f_key INT, f_val DOUBLE, "
                        "f_uniq INT) "
                        "WITH (DISTRIBUTION = HASH(f_uniq))")
                    .ok());
    RowVector dim_rows;
    for (int i = 0; i < 2000; ++i) {
      dim_rows.push_back({Datum::Int(i), Datum::Int(i % 10),
                          Datum::Varchar("d" + std::to_string(i % 16))});
    }
    ASSERT_TRUE(appliance_->LoadRows("dim", dim_rows).ok());
    RowVector fact_rows;
    for (int i = 0; i < 6000; ++i) {
      fact_rows.push_back({i % 97 == 0 ? Datum::Null() : Datum::Int(i % 50),
                           i % 23 == 0 ? Datum::Null()
                                       : Datum::Double(i % 90),
                           Datum::Int(i)});
    }
    ASSERT_TRUE(appliance_->LoadRows("fact", fact_rows).ok());
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
    delete appliance_;
    appliance_ = nullptr;
  }
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }

  static void ExpectNoTempLitter(const char* when) {
    for (int n = 0; n < kNodes; ++n) {
      for (const std::string& t :
           appliance_->compute_node(n).catalog().ListTables()) {
        EXPECT_EQ(t.find("TEMP_ID"), std::string::npos)
            << when << ": leaked " << t << " on node " << n;
      }
    }
    for (const std::string& t :
         appliance_->control_engine().catalog().ListTables()) {
      EXPECT_EQ(t.find("TEMP_ID"), std::string::npos)
          << when << ": leaked " << t << " on control";
    }
  }

  static Appliance* appliance_;
  static Session* session_;
};

Appliance* ChaosTest::appliance_ = nullptr;
Session* ChaosTest::session_ = nullptr;

TEST_F(ChaosTest, SeededDifferentialSweep) {
  uint64_t base = BaseSeed();
  int runs = NumRuns();
  const auto& tpch_queries = tpch::Queries();
  int failures = 0, matches = 0;
  for (int run = 0; run < runs; ++run) {
    uint64_t seed = base + static_cast<uint64_t>(run);
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);

    std::string sql = rng() % 2 == 0
                          ? tpch_queries[rng() % tpch_queries.size()].sql
                          : BuildRandomQuery(seed);
    QueryOptions options;
    options.execute.engine.engine =
        rng() % 2 == 0 ? EngineKind::kRow : EngineKind::kBatch;
    options.execute.dms_codec = rng() % 2 == 0 ? DmsCodec::kRow : DmsCodec::kColumnar;
    options.compile.use_plan_cache = rng() % 4 == 0;
    options.compile.compiler.pdw.enable_preagg = rng() % 2 == 0 ? 1 : 0;
    options.execute.retry.max_attempts = 3;
    options.execute.retry.sleep_fn = [](double) {};  // fake clock: no real backoff

    FaultSchedule schedule = BuildRandomSchedule(seed);
    SCOPED_TRACE("chaos seed=" + std::to_string(seed) + " schedule=" +
                 fault::FaultScheduleToString(schedule) + " engine=" +
                 (options.execute.engine.engine == EngineKind::kRow ? "row" : "batch") +
                 " codec=" +
                 (options.execute.dms_codec == DmsCodec::kRow ? "row" : "columnar") +
                 " preagg=" +
                 std::to_string(options.compile.compiler.pdw.enable_preagg) +
                 "\nsql: " + sql);

    // Fault-free reference of the exact same configuration.
    auto reference = session_->Run(sql, options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    options.execute.faults = schedule;
    auto chaotic = session_->Run(sql, options);
    if (chaotic.ok()) {
      ++matches;
      EXPECT_EQ(chaotic->rows.size(), reference->rows.size());
      EXPECT_TRUE(RowSetsEqual(chaotic->rows, reference->rows))
          << "rows diverged from the fault-free reference";
      EXPECT_EQ(chaotic->column_names, reference->column_names);
    } else {
      // A clean failure: a classified Status with a message, nothing more.
      ++failures;
      EXPECT_FALSE(chaotic.status().message().empty());
      StatusCode code = chaotic.status().code();
      EXPECT_TRUE(code == StatusCode::kExecutionError ||
                  code == StatusCode::kTransient)
          << chaotic.status().ToString();
    }
    ExpectNoTempLitter("after chaos run");
  }
  // The schedule mix guarantees both outcomes appear across a full sweep —
  // a sweep where nothing ever failed (or nothing ever survived) means the
  // injection or the retry path silently stopped working.
  if (runs >= 50) {
    EXPECT_GT(failures, 0) << "no chaos run failed: injection is dead";
    EXPECT_GT(matches, 0) << "no chaos run survived: retry/recovery is dead";
  }
  // The appliance stays serviceable after the whole sweep.
  auto after = session_->Run("SELECT COUNT(*) AS c FROM lineitem");
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  // The request registry drained with the sweep: nothing is still active,
  // and every request the DMV layer can see landed in a terminal phase —
  // injected-fault runs as 'failed' (with error text), survivors as
  // 'complete'. Mid-flight states leaking past the end of a query would
  // show up here as 'executing'/'compiling' rows.
  EXPECT_EQ(appliance_->requests().active_count(), 0u);
  // The snapshot includes the DMV query observing it, which is mid-flight
  // with zero steps by definition; every other request must be terminal.
  auto dmv = session_->Run(
      "SELECT status, COUNT(*) AS c FROM sys.dm_pdw_exec_requests "
      "WHERE NOT (status = 'executing' AND total_steps = 0) "
      "GROUP BY status");
  ASSERT_TRUE(dmv.ok()) << dmv.status().ToString();
  for (const Row& r : dmv->rows) {
    EXPECT_TRUE(r[0].string_value() == "complete" ||
                r[0].string_value() == "failed")
        << "non-terminal request leaked: " << r[0].string_value();
  }
  auto failed = session_->Run(
      "SELECT error_text FROM sys.dm_pdw_exec_requests "
      "WHERE status = 'failed'");
  ASSERT_TRUE(failed.ok()) << failed.status().ToString();
  for (const Row& r : failed->rows) {
    EXPECT_FALSE(r[0].is_null()) << "failed request without an error";
  }
}

// Pushed partial-aggregate plans through the full fault matrix: with
// pushdown enabled (and verified chosen for the high-reduction query),
// every chaotic run must either byte-match its fault-free reference of
// the identical configuration or fail with a clean classified Status —
// and never leak a temp table. The split plan has more steps (partial
// agg, its shuffle, the global phase) and therefore more distinct fault
// interleavings than the classic shape.
TEST_F(ChaosTest, PreaggPlansSurviveChaos) {
  const char* kQueries[] = {
      "SELECT d_grp, SUM(f_val) AS s, COUNT(f_val) AS c "
      "FROM fact, dim WHERE f_key = d_key GROUP BY d_grp",
      "SELECT d_grp, AVG(f_val) AS a FROM fact, dim "
      "WHERE f_key = d_key GROUP BY d_grp",
      "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_nationkey",
  };
  PdwCompilerOptions compiler;
  compiler.pdw.enable_preagg = 1;
  // The pushed shape must actually be on the wire for the dim/fact query.
  auto comp = CompilePdwQuery(appliance_->shell(), kQueries[0], compiler);
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  ASSERT_TRUE(comp->parallel.preagg_chosen);

  uint64_t base = BaseSeed() ^ 0x5ee0f1a7ull;
  int failures = 0, matches = 0;
  for (int run = 0; run < 60; ++run) {
    uint64_t seed = base + static_cast<uint64_t>(run);
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    const char* sql = kQueries[rng() % 3];
    QueryOptions options;
    options.compile.compiler = compiler;
    options.execute.engine.engine =
        rng() % 2 == 0 ? EngineKind::kRow : EngineKind::kBatch;
    options.execute.dms_codec =
        rng() % 2 == 0 ? DmsCodec::kRow : DmsCodec::kColumnar;
    options.execute.retry.max_attempts = 3;
    options.execute.retry.sleep_fn = [](double) {};
    FaultSchedule schedule = BuildRandomSchedule(seed);
    SCOPED_TRACE("preagg chaos seed=" + std::to_string(seed) + " schedule=" +
                 fault::FaultScheduleToString(schedule) + "\nsql: " + sql);

    auto reference = session_->Run(sql, options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    options.execute.faults = schedule;
    auto chaotic = session_->Run(sql, options);
    if (chaotic.ok()) {
      ++matches;
      EXPECT_TRUE(RowSetsEqual(chaotic->rows, reference->rows))
          << "rows diverged from the fault-free reference";
    } else {
      ++failures;
      EXPECT_FALSE(chaotic.status().message().empty());
      StatusCode code = chaotic.status().code();
      EXPECT_TRUE(code == StatusCode::kExecutionError ||
                  code == StatusCode::kTransient)
          << chaotic.status().ToString();
    }
    ExpectNoTempLitter("after preagg chaos run");
  }
  EXPECT_GT(failures, 0) << "no preagg chaos run failed: injection is dead";
  EXPECT_GT(matches, 0) << "no preagg chaos run survived: recovery is dead";
}

TEST_F(ChaosTest, TransientStepFailureRetriesVisibly) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  double attempts_before = metrics.counter("retry.attempts");
  double injected_before = metrics.counter("fault.injected.total");

  QueryOptions options;
  options.execute.retry.max_attempts = 3;
  options.execute.retry.sleep_fn = [](double) {};
  ASSERT_TRUE(
      fault::ParseFaultSchedule("appliance.step.dispatch:*:1:transient").ok());
  options.execute.faults = {{"appliance.step.dispatch", 0, 1,
                     FaultKind::kTransientError}};

  auto result = session_->Run(
      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey",
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The retried step is visible in the profile, EXPLAIN ANALYZE, the JSON
  // profile, and the metrics registry.
  int total_retries = 0;
  for (const auto& step : result->profile.steps) total_retries += step.retries;
  EXPECT_GE(total_retries, 1);
  EXPECT_NE(result->explain_text.find("[retries="), std::string::npos)
      << result->explain_text;
  EXPECT_NE(result->profile.ToJson().find("\"retries\":"), std::string::npos);
  EXPECT_GE(metrics.counter("retry.attempts"), attempts_before + 1);
  EXPECT_GT(metrics.counter("retry.backoff_seconds"), 0.0);
  EXPECT_GE(metrics.counter("fault.injected.total"), injected_before + 1);
  EXPECT_GE(metrics.counter("fault.injected.transient"), 1.0);

  // And the injected-then-recovered query still answers correctly.
  auto reference = appliance_->ExecuteReference(
      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey");
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(RowSetsEqual(result->rows, reference->rows));
  ExpectNoTempLitter("after retried query");

  // The DMV layer reports the same retry counts as the step profile, and
  // the recovered request finished as 'complete' with every step complete.
  auto steps = session_->Run(
      "SELECT step_index, retries, status FROM sys.dm_pdw_exec_steps "
      "WHERE request_id = " + std::to_string(result->query_id));
  ASSERT_TRUE(steps.ok()) << steps.status().ToString();
  ASSERT_EQ(steps->rows.size(), result->profile.steps.size());
  int dmv_retries = 0;
  for (const Row& r : steps->rows) {
    dmv_retries += static_cast<int>(r[1].int_value());
    EXPECT_EQ(r[2].string_value(), "complete");
  }
  EXPECT_EQ(dmv_retries, total_retries);
  auto req = session_->Run(
      "SELECT status, retries FROM sys.dm_pdw_exec_requests "
      "WHERE request_id = " + std::to_string(result->query_id));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  ASSERT_EQ(req->rows.size(), 1u);
  EXPECT_EQ(req->rows[0][0].string_value(), "complete");
  EXPECT_EQ(static_cast<int>(req->rows[0][1].int_value()), total_retries);
  EXPECT_EQ(appliance_->requests().active_count(), 0u);
}

TEST_F(ChaosTest, PermanentFaultAbortsCleanlyAndApplianceStaysUp) {
  QueryOptions options;
  options.execute.retry.max_attempts = 3;
  options.execute.retry.sleep_fn = [](double) {};
  options.execute.faults = {{"dms.bulkcopy", 0, -1, FaultKind::kPermanentError}};
  auto result = session_->Run(
      "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_nationkey",
      options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("dms.bulkcopy"), std::string::npos);
  ExpectNoTempLitter("after permanent fault");

  auto ok = session_->Run("SELECT COUNT(*) AS c FROM customer");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ChaosTest, TransientFaultsExhaustingRetriesFailCleanly) {
  QueryOptions options;
  options.execute.retry.max_attempts = 2;
  options.execute.retry.sleep_fn = [](double) {};
  options.execute.faults = {{"appliance.step.dispatch", 0, -1,
                     FaultKind::kTransientError}};
  auto result = session_->Run("SELECT COUNT(*) AS c FROM orders", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTransient);
  ExpectNoTempLitter("after exhausted retries");
}

// Faults at the admission decision itself must never leak workload state:
// the "wlm.admit" point fires before any slot or queue mutation, so a
// faulted admission leaves no held slot and no queued waiter behind. A
// concurrent storm where a third of the admissions blow up must drain to
// zero active/queued across every resource class.
TEST_F(ChaosTest, AdmissionFaultsNeverLeakSlotsOrWaiters) {
  constexpr int kThreads = 9;
  std::atomic<int> survived{0}, faulted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session = appliance_->Connect();
      QueryOptions options;
      if (t % 3 == 0) {
        options.execute.faults = {{"wlm.admit", 0, 1,
                                   t % 2 == 0 ? FaultKind::kPermanentError
                                              : FaultKind::kTransientError}};
      }
      auto r = session.Run("SELECT COUNT(*) AS c FROM nation", options);
      if (r.ok()) {
        survived.fetch_add(1);
      } else {
        faulted.fetch_add(1);
        StatusCode code = r.status().code();
        EXPECT_TRUE(code == StatusCode::kExecutionError ||
                    code == StatusCode::kTransient)
            << r.status().ToString();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(survived.load(), kThreads - kThreads / 3);
  EXPECT_EQ(faulted.load(), kThreads / 3);
  for (const WorkloadClassSnapshot& s : appliance_->workload().Snapshot()) {
    EXPECT_EQ(s.active, 0) << "leaked slot in class "
                           << ResourceClassName(s.resource_class);
    EXPECT_EQ(s.queued, 0) << "leaked waiter in class "
                           << ResourceClassName(s.resource_class);
  }
  // Every faulted request landed terminal and the appliance still admits.
  EXPECT_EQ(appliance_->requests().active_count(), 0u);
  auto after = session_->Run("SELECT COUNT(*) AS c FROM region");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectNoTempLitter("after admission-fault storm");
}

// Every registered injection point must be traversed by the covering
// queries below — a FAULT_POINT site that exists in the canonical list but
// is no longer reachable (dead code, renamed stage) fails here instead of
// silently rotting. The armed spec is a single zero-duration delay, so
// traversal is recorded without perturbing any result.
TEST_F(ChaosTest, AllFaultPointsReachable) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec harmless{"pool.task_start", 0, 1, FaultKind::kDelay};
  harmless.delay_seconds = 0;
  uint64_t token = reg.Arm({harmless});

  const std::string join_sql =
      "SELECT c_nationkey, COUNT(*) AS cnt FROM customer, orders "
      "WHERE c_custkey = o_custkey GROUP BY c_nationkey";
  for (DmsCodec codec : {DmsCodec::kColumnar, DmsCodec::kRow}) {
    QueryOptions options;
    options.execute.dms_codec = codec;
    auto r = session_->Run(join_sql, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    // plan_cache.fill is traversed on the insert after a cache miss. The
    // suite shares one appliance and the cache is on by default, so an
    // earlier test may already have cached this statement — clear first
    // to force the miss.
    appliance_->plan_cache().Clear();
    QueryOptions options;
    options.compile.use_plan_cache = true;
    auto r = session_->Run(join_sql, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  reg.Disarm(token);

  for (const std::string& point : FaultRegistry::AllPoints()) {
    EXPECT_GT(reg.HitCount(point), 0u)
        << "fault point '" << point
        << "' was never traversed by the covering queries — dead site?";
  }
  for (const auto& [point, hits] : reg.HitCounts()) {
    EXPECT_TRUE(FaultRegistry::IsKnownPoint(point))
        << "Check() was called with unregistered point '" << point << "'";
  }
}

// Regression: an error in the middle of ExecutePipelined must stop
// producers and writers without deadlocking, even when every destination
// queue is a one-message window under heavy backpressure (the
// push-with-help path used to spin on TryPush with no abort signal).
class PipelineAbortTest : public ::testing::TestWithParam<
                              std::tuple<std::string, FaultKind>> {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_P(PipelineAbortTest, BackpressuredPipelineAbortsWithoutDeadlock) {
  const auto& [point, kind] = GetParam();
  SCOPED_TRACE(point);
  FaultRegistry& reg = FaultRegistry::Global();
  uint64_t token = reg.Arm({{point, 0, 1, kind}});

  DmsService dms(4);
  std::vector<DmsProducer> producers(5);
  for (int n = 0; n < 4; ++n) {
    producers[static_cast<size_t>(n)] = [n]() -> Result<RowVector> {
      RowVector rows;
      for (int r = 0; r < 4000; ++r) {
        rows.push_back({Datum::Int(n * 4000 + r), Datum::Double(r * 0.5)});
      }
      return rows;
    };
  }
  DmsExecOptions options;
  options.codec = DmsCodec::kColumnar;
  options.queue_capacity = 1;  // maximal backpressure
  options.batch_size = 64;     // many wire messages per source
  DmsRunMetrics metrics;
  auto routed = dms.ExecutePipelined(DmsOpKind::kShuffle, std::move(producers),
                                     {0}, &metrics, &ThreadPool::Global(),
                                     options);
  // The injected fault must surface as a clean error — reaching this line
  // at all is the regression test (a deadlocked abort hangs the test).
  ASSERT_FALSE(routed.ok());
  EXPECT_NE(routed.status().message().find(point), std::string::npos)
      << routed.status().ToString();
  reg.Disarm(token);

  // The pool and DMS stay usable for the next movement.
  std::vector<DmsProducer> retry_producers(5);
  for (int n = 0; n < 4; ++n) {
    retry_producers[static_cast<size_t>(n)] = [n]() -> Result<RowVector> {
      RowVector rows;
      for (int r = 0; r < 100; ++r) {
        rows.push_back({Datum::Int(n * 100 + r), Datum::Double(r * 0.5)});
      }
      return rows;
    };
  }
  DmsRunMetrics retry_metrics;
  DmsExecOptions retry_options;
  retry_options.codec = DmsCodec::kColumnar;
  auto ok = dms.ExecutePipelined(DmsOpKind::kShuffle,
                                 std::move(retry_producers), {0},
                                 &retry_metrics, &ThreadPool::Global(),
                                 retry_options);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(static_cast<int>(retry_metrics.rows_moved), 400);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, PipelineAbortTest,
    ::testing::Combine(::testing::Values("dms.pack", "dms.queue_push",
                                         "dms.network", "dms.unpack",
                                         "dms.bulkcopy"),
                       ::testing::Values(FaultKind::kTransientError,
                                         FaultKind::kPermanentError)),
    [](const ::testing::TestParamInfo<PipelineAbortTest::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + (std::get<1>(info.param) == FaultKind::kTransientError
                         ? "_transient"
                         : "_permanent");
    });

}  // namespace
}  // namespace pdw
